"""Benchmark-generator tests: paper sizes and structural properties."""

import pytest

from repro.bench import (
    PAPER_NISQ_SIZES,
    nisq_suite,
    paper_random_suite,
    paper_suite,
    qaoa_circuit,
    qaoa_path_circuit,
    qft_circuit,
    quadratic_form_circuit,
    random_circuit,
    random_regular_graph,
    squareroot_circuit,
    supremacy_circuit,
    supremacy_patterns,
)
from repro.circuits.decompose import NATIVE_GATES


class TestPaperSizes:
    """Qubit and 2q-gate counts must match Section IV-A."""

    def test_supremacy(self):
        circuit = supremacy_circuit()
        assert circuit.num_qubits == 64
        assert circuit.num_two_qubit_gates == 560

    def test_qaoa(self):
        circuit = qaoa_circuit()
        assert circuit.num_qubits == 64
        # 96 edges x 2 MS x 7 rounds; paper reports 1260 (within 7%).
        assert circuit.num_two_qubit_gates == 1344

    def test_qaoa_path_exact_count(self):
        circuit = qaoa_path_circuit()
        assert circuit.num_qubits == 64
        assert circuit.num_two_qubit_gates == 1260  # the paper's number

    def test_squareroot(self):
        circuit = squareroot_circuit()
        assert circuit.num_qubits == 78
        assert abs(circuit.num_two_qubit_gates - 1028) <= 10

    def test_qft(self):
        circuit = qft_circuit()
        assert circuit.num_qubits == 64
        assert circuit.num_two_qubit_gates == 4032  # 2016 cp x 2 MS

    def test_quadraticform(self):
        circuit = quadratic_form_circuit()
        assert circuit.num_qubits == 64
        assert circuit.num_two_qubit_gates == 3400  # exact

    def test_suite_names_match_paper_table(self):
        names = [c.name for c in nisq_suite()]
        assert names == list(PAPER_NISQ_SIZES)


class TestStructure:
    def test_supremacy_patterns_cover_all_grid_edges(self):
        patterns = supremacy_patterns(4, 4)
        edges = {frozenset(e) for pattern in patterns for e in pattern}
        # 4x4 grid: 2 * 4 * 3 = 24 edges
        assert len(edges) == 24

    def test_supremacy_pattern_gates_disjoint_within_layer(self):
        for pattern in supremacy_patterns(8, 8):
            qubits = [q for edge in pattern for q in edge]
            assert len(qubits) == len(set(qubits))

    def test_supremacy_native_gates_only(self):
        assert all(g.name in NATIVE_GATES for g in supremacy_circuit())

    def test_supremacy_single_qubit_option(self):
        with_sq = supremacy_circuit(cycles=2, with_single_qubit=True)
        assert with_sq.num_one_qubit_gates > 0

    def test_qft_all_to_all(self):
        circuit = qft_circuit(num_qubits=8)
        pairs = set(circuit.interaction_pairs())
        assert len(pairs) == 8 * 7 // 2  # every pair interacts

    def test_qft_approximation_truncates(self):
        exact = qft_circuit(num_qubits=16)
        approx = qft_circuit(num_qubits=16, approximation_degree=4)
        assert approx.num_two_qubit_gates < exact.num_two_qubit_gates

    def test_random_regular_graph_degrees(self):
        edges = random_regular_graph(20, 3, seed=5)
        degree = {}
        for a, b in edges:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        assert all(d == 3 for d in degree.values())
        assert len(edges) == 30

    def test_random_regular_graph_parity_check(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3)

    def test_qaoa_rounds_scale_gates(self):
        one = qaoa_circuit(num_qubits=16, rounds=1, seed=3)
        two = qaoa_circuit(num_qubits=16, rounds=2, seed=3)
        assert two.num_two_qubit_gates == 2 * one.num_two_qubit_gates

    def test_squareroot_has_short_and_long_range_gates(self):
        circuit = squareroot_circuit()
        spans = [
            abs(g.qubits[0] - g.qubits[1])
            for g in circuit
            if g.is_two_qubit
        ]
        assert min(spans) == 1  # ripple carries
        assert max(spans) > 30  # cross-register fan-out

    def test_quadraticform_term_counts_drive_size(self):
        small = quadratic_form_circuit(num_linear=5, num_quadratic=5)
        assert small.num_two_qubit_gates == 8 * (5 * 2 + 5 * 8) + 56

    def test_quadraticform_validation(self):
        with pytest.raises(ValueError):
            quadratic_form_circuit(num_input=4, num_linear=10)
        with pytest.raises(ValueError):
            quadratic_form_circuit(num_input=4, num_quadratic=100)


class TestRandomEnsemble:
    def test_exact_gate_count(self):
        circuit = random_circuit(16, 200, seed=1)
        assert circuit.num_two_qubit_gates == 200

    def test_deterministic(self):
        a = random_circuit(16, 50, seed=9)
        b = random_circuit(16, 50, seed=9)
        assert a.gates == b.gates

    def test_different_seeds_differ(self):
        a = random_circuit(16, 50, seed=1)
        b = random_circuit(16, 50, seed=2)
        assert a.gates != b.gates

    def test_layered_family_pairs_disjoint_per_layer(self):
        circuit = random_circuit(10, 45, seed=4, family="layered")
        assert circuit.num_two_qubit_gates == 45
        first_layer = circuit.gates[:5]
        qubits = [q for g in first_layer for q in g.qubits]
        assert len(qubits) == len(set(qubits))

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            random_circuit(10, 10, seed=1, family="nope")

    def test_paper_suite_sizes(self):
        suite = paper_random_suite(circuits_per_size=2)
        assert len(suite) == 8
        sizes = sorted({c.num_qubits for c in suite})
        assert sizes == [60, 65, 70, 75]

    @pytest.mark.slow
    def test_full_suite_has_125_circuits(self):
        assert len(paper_suite(full=True)) == 125

    def test_reduced_suite_has_17_circuits(self):
        assert len(paper_suite(full=False)) == 17

    @pytest.mark.slow
    def test_gate_counts_near_paper_mean(self):
        suite = paper_random_suite(circuits_per_size=30)
        counts = [c.num_two_qubit_gates for c in suite]
        mean = sum(counts) / len(counts)
        assert 1200 < mean < 1700  # paper: 1438
