"""Signal-handling subprocess tests for the CLI entry points.

Each test runs ``python -m repro …`` as a real child process and
delivers real signals, pinning the operational contracts:

* ``repro load`` / ``repro sweep`` on SIGINT: stop dispatching, drain
  in-flight work, emit a partial-but-marked report, exit **130**;
* ``repro serve`` on SIGTERM: stop admitting, drain within the
  deadline, exit **0** with a ``drained clean`` line.

Marked ``slow``: each test pays interpreter start-up plus a few
seconds of live traffic.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.loadgen.scenario import Scenario, WorkloadItem
from repro.serve.client import ServeClient

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parents[1]


def _spawn(*argv: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class _StderrTail:
    """Collects a child's stderr on a thread so the test can wait for
    marker lines without risking a pipe-buffer deadlock."""

    def __init__(self, proc: subprocess.Popen) -> None:
        self.lines: list[str] = []
        self._proc = proc
        self._thread = threading.Thread(target=self._pump, daemon=True)
        self._thread.start()

    def _pump(self) -> None:
        for line in self._proc.stderr:
            self.lines.append(line)

    def wait_for(self, needle: str, timeout: float = 30.0) -> str:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in list(self.lines):
                if needle in line:
                    return line
            if self._proc.poll() is not None and not self._thread.is_alive():
                break
            time.sleep(0.05)
        raise AssertionError(
            f"never saw {needle!r} in stderr:\n{''.join(self.lines)}"
        )

    def text(self) -> str:
        self._thread.join(timeout=10)
        return "".join(self.lines)


def _long_scenario(path: Path) -> Path:
    """A duration-bounded closed loop that would run ~30 s untouched —
    plenty of runway for a mid-run SIGINT."""
    scenario = Scenario(
        name="sigint-probe",
        mix=(WorkloadItem("random", qubits=12, gates=60),),
        machines=("linear3",),
        mode="closed",
        consumers=2,
        duration=30.0,
        cache="disabled",
        sample_interval=0.25,
    )
    target = path / "scenario.json"
    target.write_text(json.dumps(scenario.to_dict()))
    return target


class TestLoadSigint:
    def test_drains_and_exits_130_with_partial_report(self, tmp_path):
        report_path = tmp_path / "report.json"
        proc = _spawn(
            "load",
            str(_long_scenario(tmp_path)),
            "--report-out",
            str(report_path),
        )
        tail = _StderrTail(proc)
        try:
            tail.wait_for("load: scenario sigint-probe")
            time.sleep(1.0)  # let some jobs complete first
            proc.send_signal(signal.SIGINT)
            returncode = proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert returncode == 130, tail.text()
        report = json.loads(report_path.read_text())
        assert report["interrupted"] is True
        # The drain kept the ledger intact: nothing vanished.
        assert report["resilience"]["lost"] == 0
        assert "partial report" in tail.text()


class TestSweepSigint:
    def test_partial_sweep_exits_130(self, tmp_path):
        # ~20 jobs x ~150 ms keeps total runtime bounded even if the
        # signal were mishandled, while leaving seconds of runway.
        benchmarks = ",".join(
            f"random:48:3000:{seed}" for seed in range(1, 21)
        )
        proc = _spawn(
            "sweep",
            "--machines",
            "linear4",
            "--benchmarks",
            benchmarks,
            "--configs",
            "baseline",
            "--no-cache",
        )
        tail = _StderrTail(proc)
        try:
            tail.wait_for("[1/20]")  # first job done: mid-run for sure
            proc.send_signal(signal.SIGINT)
            returncode = proc.wait(timeout=120)
            stdout = proc.stdout.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert returncode == 130, tail.text()
        assert "INTERRUPTED: partial sweep" in stdout


class TestServeSigterm:
    def test_drains_clean_and_exits_zero(self):
        proc = _spawn(
            "serve",
            "--port",
            "0",
            "--workers",
            "1",
            "--queue-depth",
            "8",
            "--drain-deadline",
            "60",
        )
        tail = _StderrTail(proc)
        try:
            line = tail.wait_for("repro serve: listening on")
            url = line.split("listening on", 1)[1].split()[0]
            client = ServeClient(url, identity="sigterm-test")
            assert client.wait_until_up(timeout=10.0)
            spec = {
                "kind": "random",
                "machine": "linear3",
                "config": "optimized",
                "qubits": 8,
                "gates": 30,
                "seed": 5,
            }
            body = client.submit(spec).body
            done = client.wait(body["id"], timeout=60)
            assert done.body["outcome"] == "ok"
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert returncode == 0, tail.text()
        assert "drained clean" in tail.text()
