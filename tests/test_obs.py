"""Observability-spine tests: registry semantics, span trees, the
decision-trace schema, instrumentation inertness, and the
serial-vs-parallel metrics-merge equivalence."""

import json

import pytest

from repro import obs
from repro.arch import linear_topology, uniform_machine
from repro.batch import BatchRunner, sweep
from repro.bench import random_circuit
from repro.compiler.compiler import compile_circuit
from repro.compiler.config import CompilerConfig
from repro.obs import (
    EVENT_FIELDS,
    HistogramSummary,
    MetricsRegistry,
    Observation,
    SCHEMA_VERSION,
    SpanRecorder,
    TraceRecorder,
    read_jsonl,
    validate_event,
    validate_stream,
)
from repro.obs.report import render_report


def tiny_machine():
    return uniform_machine(linear_topology(3), 6, 2)


def tiny_circuit(seed=1):
    return random_circuit(10, 60, seed=seed)


@pytest.fixture(autouse=True)
def _obs_disabled_after():
    """No test leaks an active observation into the next."""
    yield
    obs.disable()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.set_gauge("g", 2.0)
        reg.set_gauge("g", 7.0)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        assert reg.counter("a") == 5
        assert reg.counter("never") == 0
        assert reg.gauges["g"] == 7.0
        hist = reg.histograms["h"]
        assert hist.count == 2
        assert hist.total == 4.0
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == 2.0
        assert reg.total("h") == 4.0
        assert reg.total("never") == 0.0

    def test_timer_records_elapsed(self):
        reg = MetricsRegistry()
        with reg.timer("t_seconds"):
            pass
        hist = reg.histograms["t_seconds"]
        assert hist.count == 1
        assert hist.total >= 0.0

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        reg.set_gauge("g", 1.5)
        reg.observe("h", 0.25)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"] == {"a": 2}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        a.observe("h", 1.0)
        b.observe("h", 5.0)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.merge(b.snapshot())
        assert a.counter("c") == 5
        hist = a.histograms["h"]
        assert hist.count == 2 and hist.total == 6.0
        assert hist.min == 1.0 and hist.max == 5.0
        assert a.gauges["g"] == 9.0  # incoming value wins

    def test_merge_order_independent(self):
        parts = []
        for k in range(3):
            reg = MetricsRegistry()
            reg.inc("n", k + 1)
            reg.observe("h", float(k))
            parts.append(reg.snapshot())
        left, right = MetricsRegistry(), MetricsRegistry()
        for snap in parts:
            left.merge(snap)
        for snap in reversed(parts):
            right.merge(snap)
        assert left.snapshot() == right.snapshot()

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("h", 1.0)
        reg.reset()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_empty_histogram_dict_omits_min_max(self):
        assert HistogramSummary().to_dict() == {"count": 0, "sum": 0.0}


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------
class TestSpanRecorder:
    def test_nesting_and_aggregation(self):
        spans = SpanRecorder()
        for _ in range(3):
            with spans.span("outer"):
                with spans.span("inner"):
                    pass
                spans.add("leaf", 0.5)
        outer = spans.node("outer")
        assert outer.count == 3
        assert spans.node("outer", "inner").count == 3
        leaf = spans.node("outer", "leaf")
        assert leaf.count == 3
        assert leaf.seconds == pytest.approx(1.5)
        assert spans.node("outer", "missing") is None

    def test_same_name_siblings_fold_into_one_node(self):
        spans = SpanRecorder()
        with spans.span("a"):
            with spans.span("r"):
                with spans.span("r"):  # recursion nests, not folds
                    pass
        assert spans.node("a", "r").count == 1
        assert spans.node("a", "r", "r").count == 1

    def test_to_dict_round_trips_through_json(self):
        spans = SpanRecorder()
        with spans.span("a"):
            spans.add("b", 0.25)
        data = json.loads(json.dumps(spans.to_dict()))
        assert data[0]["name"] == "a"
        assert data[0]["children"][0]["name"] == "b"

    def test_render_lists_every_node(self):
        spans = SpanRecorder()
        with spans.span("compile"):
            spans.add("decide", 0.001)
            spans.add("route", 0.002)
        text = spans.render()
        for name in ("compile", "decide", "route"):
            assert name in text

    def test_exception_unwinds_stack(self):
        spans = SpanRecorder()
        with pytest.raises(RuntimeError):
            with spans.span("outer"):
                with spans.span("inner"):
                    raise RuntimeError("boom")
        with spans.span("after"):
            pass
        assert spans.node("after") is not None
        assert spans.node("outer", "after") is None


# ----------------------------------------------------------------------
# Decision-trace schema
# ----------------------------------------------------------------------
class TestTraceSchema:
    def test_emit_envelope_and_counts(self):
        trace = TraceRecorder()
        trace.emit("eviction", trap=1, ion=2, dst=0, kind="cheap")
        trace.emit("eviction", trap=2, ion=3, dst=1, kind="traffic-block")
        record = trace.events[0]
        assert record["v"] == SCHEMA_VERSION
        assert record["seq"] == 0
        assert trace.events[1]["seq"] == 1
        assert trace.counts() == {"eviction": 2}
        assert len(trace) == 2

    def test_validate_rejects_unknown_event(self):
        with pytest.raises(ValueError, match="unknown event"):
            validate_event({"v": SCHEMA_VERSION, "seq": 0, "event": "nope"})

    def test_validate_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing fields"):
            validate_event(
                {"v": SCHEMA_VERSION, "seq": 0, "event": "eviction"}
            )

    def test_validate_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="schema version"):
            validate_event(
                {"v": SCHEMA_VERSION + 1, "seq": 0, "event": "eviction",
                 "trap": 0, "ion": 1, "dst": 2, "kind": "cheap"}
            )

    def test_jsonl_round_trip_validates(self, tmp_path):
        """Every event type documented in EVENT_FIELDS survives a
        write/read/validate round trip."""
        trace = TraceRecorder()
        samples = {
            "gate_considered": dict(
                gate="ms(0,1)", qubits=[0, 1], traps=[0, 1], pos=3, layer=1
            ),
            "move_scores": dict(
                gate="ms(0,1)", score_a_to_b=2.0, score_b_to_a=1.0,
                favoured_dst=1,
            ),
            "shuttle_decision": dict(
                gate="ms(0,1)", ion=0, src=0, dst=1, flipped=False
            ),
            "eviction": dict(trap=1, ion=4, dst=2, kind="both-full"),
            "reorder_splice": dict(
                active_gate="ms(0,1)", candidate_gate="ms(2,3)",
                active_pos=5, candidate_pos=9,
            ),
            "pass_candidate": {
                "pass": "reroute", "rewrites": 2, "accepted": True,
                "reason": "applied", "shuttles_removed": 1,
            },
            "splice_verify": dict(
                start=10, end=20, window=4, ok=True, mode="rejoin",
                rejoin=20,
            ),
        }
        assert set(samples) == set(EVENT_FIELDS)
        for event, fields in samples.items():
            validate_event(trace.emit(event, **fields))
        path = tmp_path / "events.jsonl"
        assert trace.write_jsonl(str(path)) == len(samples)
        loaded = read_jsonl(str(path))
        assert loaded == trace.events
        assert validate_stream(loaded) == len(samples)


# ----------------------------------------------------------------------
# Enablement protocol
# ----------------------------------------------------------------------
class TestEnablement:
    def test_disabled_by_default(self):
        assert obs.active() is None
        assert not obs.enabled()

    def test_observe_restores_previous_state(self):
        with obs.observe() as observation:
            assert obs.active() is observation
            assert observation.trace is None
        assert obs.active() is None

    def test_observe_trace_flag(self):
        with obs.observe(trace=True) as observation:
            assert observation.trace is not None

    def test_enable_disable(self):
        observation = obs.enable()
        assert obs.active() is observation
        assert obs.disable() is observation
        assert obs.active() is None

    def test_collect_swaps_metrics_only(self):
        with obs.observe(trace=True) as outer:
            outer.metrics.inc("outer")
            with obs.collect() as registry:
                inner = obs.active()
                assert inner is not outer
                assert inner.metrics is registry
                assert inner.spans is outer.spans
                assert inner.trace is outer.trace
                registry.inc("inner")
            assert obs.active() is outer
        assert "inner" not in outer.metrics.counters

    def test_collect_activates_when_disabled(self):
        with obs.collect() as registry:
            assert obs.active() is not None
            assert obs.active().metrics is registry
        assert obs.active() is None

    def test_export_json_shape(self):
        observation = Observation(trace=True)
        observation.metrics.inc("a")
        observation.trace.emit(
            "eviction", trap=0, ion=1, dst=2, kind="cheap"
        )
        document = obs.export_json(observation)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["metrics"]["counters"] == {"a": 1}
        assert document["trace_events"] == 1
        assert json.loads(json.dumps(document)) == document


# ----------------------------------------------------------------------
# Instrumented compile
# ----------------------------------------------------------------------
class TestInstrumentedCompile:
    def test_schedules_identical_with_obs_off_and_on(self):
        machine = tiny_machine()
        circuit = tiny_circuit()
        config = CompilerConfig.optimized().variant(
            post_passes=("default",)
        )
        base = compile_circuit(circuit, machine, config)
        with obs.observe(trace=True):
            traced = compile_circuit(circuit, machine, config)
        assert list(base.schedule.ops) == list(traced.schedule.ops)
        assert base.gate_order == traced.gate_order
        assert base.final_chains == traced.final_chains
        assert base.num_reorders == traced.num_reorders

    def test_span_tree_covers_compile_wall_time(self):
        """The compile span's per-phase children account for (almost)
        all of the measured compile time, and the span total agrees
        with CompilationResult.compile_time to within 10%."""
        machine = tiny_machine()
        circuit = tiny_circuit()
        with obs.observe() as observation:
            result = compile_circuit(circuit, machine)
        compile_node = observation.spans.node("compile")
        assert compile_node is not None and compile_node.count == 1
        assert compile_node.seconds == pytest.approx(
            result.compile_time, rel=0.10
        )
        assert compile_node.child_seconds() <= compile_node.seconds

    def test_compile_counters_match_result(self):
        machine = tiny_machine()
        circuit = tiny_circuit()
        with obs.observe() as observation:
            result = compile_circuit(circuit, machine)
        metrics = observation.metrics
        assert metrics.counter("compile.circuits") == 1
        assert metrics.counter("compile.shuttles") == result.num_shuttles
        assert metrics.counter("compile.reorders") == result.num_reorders
        assert (
            metrics.counter("compile.rebalances") == result.num_rebalances
        )
        assert metrics.counter("compile.gates") == result.schedule.num_gates
        assert metrics.histograms["phase.compile_seconds"].count == 1

    def test_memo_counters_split_hits_and_passes(self):
        machine = tiny_machine()
        circuit = tiny_circuit()
        with obs.observe() as observation:
            compile_circuit(circuit, machine)
        metrics = observation.metrics
        hits = metrics.counter("compile.index.memo_hits")
        passes = metrics.counter("compile.index.score_passes")
        assert passes > 0
        assert hits > 0  # favoured + decide share the active gate's memo

    def test_trace_events_validate(self):
        machine = tiny_machine()
        circuit = tiny_circuit()
        config = CompilerConfig.optimized().variant(
            post_passes=("default",)
        )
        with obs.observe(trace=True) as observation:
            compile_circuit(circuit, machine, config)
        events = observation.trace.events
        assert events, "a cross-trap compile must emit decision events"
        assert validate_stream(events) == len(events)
        counts = observation.trace.counts()
        assert counts["gate_considered"] == counts["shuttle_decision"]

    def test_report_renders(self):
        machine = tiny_machine()
        circuit = tiny_circuit()
        with obs.observe(trace=True) as observation:
            compile_circuit(circuit, machine)
        text = render_report(observation, "trace: test")
        assert "span tree (wall time):" in text
        assert "compile" in text
        assert "decision events:" in text


# ----------------------------------------------------------------------
# Multiprocessing metrics merge
# ----------------------------------------------------------------------
def _sweep_jobs():
    machine = tiny_machine()
    circuits = [tiny_circuit(seed) for seed in (1, 2, 3)]
    # A duplicated circuit exercises in-run dedup under observation.
    circuits.append(tiny_circuit(1))
    return sweep(
        circuits, [machine], [CompilerConfig.optimized()], simulate=True
    )


class TestBatchMetricsMerge:
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_parallel_merge_equals_serial(self, n_jobs):
        with obs.observe() as serial_obs:
            BatchRunner(n_jobs=1).run(_sweep_jobs())
        with obs.observe() as parallel_obs:
            BatchRunner(n_jobs=n_jobs).run(_sweep_jobs())
        serial = serial_obs.metrics.snapshot()
        parallel = parallel_obs.metrics.snapshot()
        assert serial["counters"] == parallel["counters"]
        # Histogram counts/sums of deterministic quantities agree;
        # wall-time histograms agree in count only.
        for name, data in serial["histograms"].items():
            assert parallel["histograms"][name]["count"] == data["count"]

    def test_worker_snapshots_stripped_from_results(self):
        with obs.observe():
            results = BatchRunner(n_jobs=2).run(_sweep_jobs())
        assert all(r.metrics is None for r in results)

    def test_dedup_counter(self):
        with obs.observe() as observation:
            runner = BatchRunner(n_jobs=1)
            runner.run(_sweep_jobs())
        assert observation.metrics.counter("batch.deduplicated") == 1
        assert runner.deduplicated == 1

    def test_unobserved_run_ships_no_metrics(self):
        results = BatchRunner(n_jobs=2).run(_sweep_jobs())
        assert all(r.metrics is None for r in results)

    def test_cache_stats_reach_registry(self, tmp_path):
        jobs = _sweep_jobs()
        with obs.observe() as cold:
            BatchRunner(n_jobs=1, cache=str(tmp_path)).run(jobs)
        assert cold.metrics.counter("cache.misses") == 3
        assert cold.metrics.counter("cache.puts") == 3
        with obs.observe() as warm:
            BatchRunner(n_jobs=1, cache=str(tmp_path)).run(jobs)
        # The duplicate job is a disk hit on the warm pass (its twin
        # resolved from cache, so it never enters the dedup set).
        assert warm.metrics.counter("cache.hits") == 4
        assert warm.metrics.counter("cache.misses") == 0


# ----------------------------------------------------------------------
# Fixed-bucket quantiles: merge-stable percentiles
# ----------------------------------------------------------------------
class TestQuantileBuckets:
    def _values(self):
        # A deterministic mixed-scale stream spanning several octaves.
        import random

        rng = random.Random(42)
        return [rng.uniform(0.0005, 0.5) for _ in range(300)]

    def test_quantile_tracks_exact_within_bucket_width(self):
        values = sorted(self._values())
        hist = HistogramSummary()
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.9, 0.99):
            exact = values[min(len(values) - 1, int(q * len(values)))]
            # Bucket edges are ~19% apart (4 per octave): the bucketed
            # answer must land within one bucket of the exact rank.
            assert hist.quantile(q) == pytest.approx(exact, rel=0.20)
        # Extremes clamp into [min, max]; the top end is exact.
        assert hist.min <= hist.quantile(0.0) <= hist.min * 1.20
        assert hist.quantile(1.0) == hist.max

    def test_single_value_stream_is_exact(self):
        hist = HistogramSummary()
        for _ in range(10):
            hist.observe(0.125)
        assert hist.quantile(0.5) == 0.125
        assert hist.percentiles() == {
            "p50": 0.125, "p90": 0.125, "p99": 0.125
        }

    def test_merge_is_order_independent(self):
        # Property: merging ANY partition of a stream in ANY order
        # yields the same buckets — hence the same percentiles — as
        # observing the whole stream in one registry.
        import itertools

        values = self._values()
        shards = [values[0::3], values[1::3], values[2::3]]
        reference = HistogramSummary()
        for value in values:
            reference.observe(value)
        payloads = []
        for shard in shards:
            hist = HistogramSummary()
            for value in shard:
                hist.observe(value)
            payloads.append(hist.to_dict())
        for order in itertools.permutations(payloads):
            merged = HistogramSummary()
            for payload in order:
                merged.merge_dict(payload)
            assert merged.count == reference.count
            assert merged.buckets == reference.buckets
            assert merged.percentiles() == reference.percentiles()
            assert merged.min == reference.min
            assert merged.max == reference.max

    def test_to_dict_round_trips_through_json(self):
        hist = HistogramSummary()
        for value in self._values():
            hist.observe(value)
        payload = json.loads(json.dumps(hist.to_dict()))
        clone = HistogramSummary()
        clone.merge_dict(payload)
        assert clone.buckets == hist.buckets
        assert clone.percentiles() == hist.percentiles()

    def test_legacy_payload_without_buckets_merges(self):
        # Snapshots written before quantile buckets existed carry only
        # count/sum/min/max; merging them must not crash, and the
        # count/mean arithmetic stays right.
        hist = HistogramSummary()
        hist.observe(1.0)
        hist.merge_dict({"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0})
        assert hist.count == 4
        assert hist.mean == pytest.approx(1.75)
        assert hist.quantile(0.5) >= hist.min

    def test_registry_merge_preserves_percentiles(self):
        # The same property through the registry-level snapshot/merge
        # path the batch workers use.
        values = self._values()
        parent = MetricsRegistry()
        for shard in (values[0::2], values[1::2]):
            worker = MetricsRegistry()
            for value in shard:
                worker.observe("lat", value)
            parent.merge(worker.snapshot())
        reference = MetricsRegistry()
        for value in values:
            reference.observe("lat", value)
        assert (
            parent.histograms["lat"].percentiles()
            == reference.histograms["lat"].percentiles()
        )
        snap = parent.snapshot()["histograms"]["lat"]
        assert snap["p50"] == parent.histograms["lat"].quantile(0.5)
        assert "buckets" in snap
