"""Load-harness tests: scenario determinism, soak detectors, failed-job
accounting through the metrics spine, and end-to-end LoadReport assembly
(including the serial-vs-parallel merge-equality regression)."""

import json

import pytest

from repro import obs
from repro.arch import linear_topology, uniform_machine
from repro.batch import BatchRunner, CompileJob
from repro.bench import random_circuit
from repro.compiler.config import CompilerConfig
from repro.loadgen import (
    PRESETS,
    LoadRunner,
    Scenario,
    SoakThresholds,
    WorkloadItem,
    evaluate_soak,
    linear_slope,
    load_scenario,
    render_load_report,
    rss_kb,
)


def tiny_scenario(**overrides):
    """A fast cache-free closed-loop scenario for end-to-end tests."""
    defaults = dict(
        name="tiny",
        mix=(
            WorkloadItem("random", weight=2, qubits=12, gates=50),
            WorkloadItem("bench", weight=1, name="qft", qubits=10),
        ),
        machines=("linear3",),
        consumers=2,
        jobs=8,
        cache="disabled",
        seed=7,
        sample_interval=0.2,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


# ----------------------------------------------------------------------
# Scenario model: determinism, serialization, validation
# ----------------------------------------------------------------------
class TestScenario:
    def test_same_seed_same_jobs(self):
        scenario = tiny_scenario(jobs=24)
        first = scenario.draw_jobs(24)
        second = scenario.draw_jobs(24)
        assert [j.label for j in first] == [j.label for j in second]
        assert [j.fingerprint() for j in first] == [
            j.fingerprint() for j in second
        ]

    def test_seed_changes_jobs(self):
        scenario = tiny_scenario(jobs=24)
        base = [j.fingerprint() for j in scenario.draw_jobs(24)]
        reseeded = [j.fingerprint() for j in scenario.draw_jobs(24, seed=99)]
        assert base != reseeded

    def test_stream_independent_of_consumers_and_mode(self):
        # The job stream depends only on the seed and the mix — not on
        # how the traffic is shaped or how many consumers drain it.
        import dataclasses

        scenario = tiny_scenario(jobs=16)
        base = [j.fingerprint() for j in scenario.draw_jobs(16)]
        reshaped = dataclasses.replace(
            scenario, consumers=5, mode="open", rate=10.0
        )
        assert [j.fingerprint() for j in reshaped.draw_jobs(16)] == base

    def test_dict_round_trip_preserves_draws(self):
        scenario = tiny_scenario(jobs=12)
        clone = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert clone == scenario
        assert [j.fingerprint() for j in clone.draw_jobs(12)] == [
            j.fingerprint() for j in scenario.draw_jobs(12)
        ]

    def test_load_scenario_resolves_presets(self):
        for name, preset in PRESETS.items():
            assert load_scenario(name) is preset

    def test_load_scenario_reads_json_file(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(json.dumps(tiny_scenario().to_dict()))
        assert load_scenario(str(path)) == tiny_scenario()

    def test_load_scenario_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            load_scenario("no-such-preset")

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mix": ()},
            {"mode": "lumpy"},
            {"cache": "tepid"},
            {"mode": "open", "rate": None},
            {"jobs": None, "duration": None},
            {"machines": ("hexagonal9",)},
            {"configs": ("turbo",)},
        ],
    )
    def test_scenario_validation(self, overrides):
        with pytest.raises(ValueError):
            tiny_scenario(**overrides)

    def test_workload_item_validation(self):
        with pytest.raises(ValueError, match="kind"):
            WorkloadItem("mystery")
        with pytest.raises(ValueError, match="weight"):
            WorkloadItem("random", weight=0, qubits=8)
        with pytest.raises(ValueError, match="bench workload"):
            WorkloadItem("bench", name="no-such-bench")
        with pytest.raises(ValueError, match="qubit count"):
            WorkloadItem("random")

    def test_open_loop_count_and_arrivals(self):
        scenario = tiny_scenario(
            mode="open", rate=4.0, jobs=None, duration=2.5
        )
        assert scenario.job_count() == 10  # ceil(4.0 * 2.5)
        arrivals = scenario.arrivals(10)
        assert arrivals[0] == 0.0
        assert arrivals[1] == pytest.approx(0.25)
        assert arrivals[-1] == pytest.approx(2.25)

    def test_closed_loop_arrivals_are_none(self):
        assert tiny_scenario().arrivals(8) is None
        assert tiny_scenario(jobs=None, duration=3.0).job_count() is None

    def test_presets_are_valid_and_distinct(self):
        assert set(PRESETS) == {
            "smoke", "steady", "paced", "soak-short", "bench-pin"
        }
        for preset in PRESETS.values():
            assert preset.job_count() is None or preset.job_count() > 0


# ----------------------------------------------------------------------
# Soak detectors on synthetic streams
# ----------------------------------------------------------------------
class TestSoakDetectors:
    def test_linear_slope_recovers_known_line(self):
        points = [(t, 100.0 + 12.5 * t) for t in range(10)]
        assert linear_slope(points) == pytest.approx(12.5)
        assert linear_slope([(0.0, 5.0)]) == 0.0
        assert linear_slope([(1.0, 2.0), (1.0, 9.0)]) == 0.0

    def _trip_map(self, memory, latency, throughput, **thresholds):
        trips = evaluate_soak(
            memory, latency, throughput, SoakThresholds(**thresholds)
        )
        return {trip.name: trip for trip in trips}

    def test_memory_growth_trips(self):
        # 512 KiB/s growth over a 20 s span vs a 256 KiB/s threshold.
        leaking = [(float(t), 50_000.0 + 512.0 * t) for t in range(21)]
        trip = self._trip_map(leaking, [], [])["memory_growth_slope_kb_per_s"]
        assert trip.tripped
        assert trip.value == pytest.approx(512.0)

    def test_flat_memory_passes(self):
        flat = [(float(t), 50_000.0 + (t % 2)) for t in range(21)]
        trip = self._trip_map(flat, [], [])["memory_growth_slope_kb_per_s"]
        assert not trip.tripped

    def test_short_span_memory_is_inconclusive(self):
        # The same absurd slope over 0.1 s must not trip: allocator
        # warm-up extrapolated over a sub-second run means nothing.
        burst = [(0.0, 50_000.0), (0.1, 80_000.0)]
        trip = self._trip_map(burst, [], [])["memory_growth_slope_kb_per_s"]
        assert trip.value is None
        assert not trip.tripped

    def test_latency_drift_trips_and_flat_passes(self):
        drifting = [0.010 * (1.0 + 0.2 * i) for i in range(12)]
        flat = [0.010] * 12
        assert self._trip_map([], drifting, [])["latency_drift_ratio"].tripped
        steady = self._trip_map([], flat, [])["latency_drift_ratio"]
        assert not steady.tripped
        assert steady.value == pytest.approx(1.0)

    def test_throughput_sag_trips_and_flat_passes(self):
        sagging = [40.0] * 4 + [30.0] * 4 + [15.0] * 4
        flat = [40.0] * 12
        assert self._trip_map([], [], sagging)["throughput_sag_ratio"].tripped
        assert not self._trip_map([], [], flat)["throughput_sag_ratio"].tripped

    def test_few_windows_are_inconclusive(self):
        # A drift that WOULD trip with enough windows reports None below
        # min_windows — an inconclusive soak is not a failed soak.
        short = [0.010, 0.010, 0.100]
        result = self._trip_map([], short, short)
        assert result["latency_drift_ratio"].value is None
        assert not result["latency_drift_ratio"].tripped
        assert result["throughput_sag_ratio"].value is None

    def test_evaluate_soak_always_reports_three(self):
        trips = evaluate_soak([], [], [])
        assert [t.name for t in trips] == [
            "memory_growth_slope_kb_per_s",
            "latency_drift_ratio",
            "throughput_sag_ratio",
        ]
        assert all(t.value is None and not t.tripped for t in trips)
        assert all(set(t.to_dict()) == {
            "name", "value", "threshold", "tripped"
        } for t in trips)

    def test_rss_readable_on_linux(self):
        value = rss_kb()
        # The suite runs on Linux where /proc is available; the value
        # must be a sane positive resident size.
        assert value is not None and value > 1000.0


# ----------------------------------------------------------------------
# Failed jobs keep flowing through the metrics spine (regression)
# ----------------------------------------------------------------------
class TestFailedJobAccounting:
    def _mixed_jobs(self):
        machine = uniform_machine(linear_topology(3), 6, 2)
        too_small = uniform_machine(linear_topology(2), 4, 2)
        config = CompilerConfig.baseline()
        return [
            CompileJob(random_circuit(10, 50, seed=1), machine, config),
            CompileJob(random_circuit(10, 50, seed=2), too_small, config),
            CompileJob(random_circuit(10, 50, seed=3), machine, config),
        ]

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_outcome_counters_survive_failures(self, n_jobs):
        # Regression: a failed job must still ship its worker-side
        # metrics snapshot and be counted, at every pool size.
        with obs.observe() as observation:
            results = BatchRunner(n_jobs=n_jobs).run(self._mixed_jobs())
        counters = observation.metrics.counters
        assert counters["batch.jobs_ok"] == 2
        assert counters["batch.jobs_failed"] == 1
        failed = [r for r in results if not r.ok]
        assert len(failed) == 1
        # Service time is recorded for failures too, so load reports
        # can attribute latency to errored work.
        assert failed[0].seconds is not None and failed[0].seconds > 0.0

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_run_timed_records_failures(self, n_jobs):
        timed = BatchRunner(n_jobs=n_jobs).run_timed(self._mixed_jobs())
        assert len(timed) == 3
        by_index = {t.result.job_index: t for t in timed}
        assert not by_index[1].result.ok
        assert by_index[1].result.seconds is not None
        for entry in timed:
            assert entry.finished >= entry.dispatched >= entry.arrival

    def test_load_report_counts_errored_work(self):
        # 40-qubit circuits cannot fit a linear2 machine: every job
        # fails, and the report must still account for all of them.
        scenario = tiny_scenario(
            mix=(WorkloadItem("random", qubits=40, gates=40),),
            machines=("linear2",),
            jobs=4,
        )
        report = LoadRunner(scenario).run()
        assert report.counts == {
            "jobs": 4, "ok": 0, "failed": 4, "refused": 0,
            "cache_hits": 0, "cache_misses": 4,
        }
        assert report.latency["count"] == 4  # errored work has latency
        assert report.metrics["counters"]["load.failed"] == 4
        assert report.metrics["counters"]["batch.jobs_failed"] == 4


# ----------------------------------------------------------------------
# End-to-end LoadRunner runs
# ----------------------------------------------------------------------
class TestLoadRunner:
    def test_smoke_preset_end_to_end(self):
        report = LoadRunner(PRESETS["smoke"]).run()
        assert report.counts["jobs"] == 12
        assert report.counts["failed"] == 0
        latency = report.latency
        assert latency["source"] == "service"
        assert latency["count"] == 12
        assert latency["p50"] <= latency["p90"] <= latency["p99"]
        assert latency["min"] <= latency["p50"] <= latency["max"]
        assert report.throughput["windows"]
        assert sum(w["jobs"] for w in report.throughput["windows"]) == 12
        assert report.memory["samples"]
        assert report.passed  # smoke is far too short to trip anything

    def test_report_serializes_and_renders(self, tmp_path):
        report = LoadRunner(tiny_scenario(jobs=4)).run()
        payload = json.dumps(report.to_dict(), indent=2)
        parsed = json.loads(payload)
        assert parsed["soak"]["passed"] == report.passed
        assert {"scenario", "counts", "throughput", "latency",
                "memory", "cache", "metrics"} <= set(parsed)
        text = render_load_report(report)
        assert "tiny" in text
        assert "p50" in text and "soak" in text

    def test_overrides_replace_scenario_fields(self):
        runner = LoadRunner(
            PRESETS["soak-short"], consumers=1, seed=5, jobs=3
        )
        assert runner.scenario.consumers == 1
        assert runner.scenario.seed == 5
        assert runner.scenario.jobs == 3
        assert runner.scenario.duration is None  # count override wins

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_parallel_merge_equals_serial(self, n_jobs):
        # The acceptance bar: identical counter and histogram merges no
        # matter the pool size (cache disabled, so outcomes cannot vary
        # with completion timing).
        scenario = tiny_scenario(jobs=8)
        baseline = LoadRunner(scenario, consumers=1).run()
        candidate = LoadRunner(scenario, consumers=n_jobs).run()
        assert candidate.counts == baseline.counts
        base_counters = baseline.metrics["counters"]
        cand_counters = candidate.metrics["counters"]
        for key in ("load.jobs", "load.ok", "batch.jobs_ok",
                    "batch.jobs", "batch.cache_misses"):
            assert cand_counters.get(key) == base_counters.get(key), key
        base_hist = baseline.metrics["histograms"]["load.latency_seconds"]
        cand_hist = candidate.metrics["histograms"]["load.latency_seconds"]
        assert cand_hist["count"] == base_hist["count"] == 8

    def test_open_loop_reports_sojourn(self):
        scenario = tiny_scenario(
            mode="open", rate=40.0, consumers=2, jobs=8
        )
        report = LoadRunner(scenario).run()
        assert report.latency["source"] == "sojourn"
        assert report.counts["jobs"] == 8
        # Open-loop wall time is bounded below by the arrival timeline.
        assert report.duration_seconds >= 7 / 40.0

    def test_warm_cache_serves_hits(self):
        # A deterministic bench-only mix prewarms to exactly the
        # measured job list: every measured request is a cache hit.
        scenario = tiny_scenario(
            mix=(WorkloadItem("bench", name="qft", qubits=10),),
            cache="warm",
            jobs=6,
        )
        report = LoadRunner(scenario).run()
        assert report.counts["cache_hits"] == 6
        assert report.cache == {"mode": "warm", "hit_rate": 1.0}
        assert report.latency["count"] == 6  # hits still have latency

    def test_cold_cache_dedups_nothing_but_hits_repeats(self):
        # One deterministic circuit drawn 6 times with a cold cache:
        # the first compile misses, later arrivals may hit.  All jobs
        # are accounted either way and at least one compile happened.
        scenario = tiny_scenario(
            mix=(WorkloadItem("bench", name="qft", qubits=10),),
            cache="cold",
            consumers=1,
            jobs=6,
        )
        report = LoadRunner(scenario).run()
        assert report.counts["jobs"] == 6
        assert report.counts["cache_misses"] >= 1
        assert report.counts["cache_hits"] == 6 - report.counts["cache_misses"]

    def test_duration_bounded_closed_loop_terminates(self):
        scenario = tiny_scenario(jobs=None, duration=0.5, sample_interval=0.1)
        report = LoadRunner(scenario).run()
        assert report.counts["jobs"] > 0
        assert report.counts["jobs"] == report.counts["ok"]
        # The run stops within a chunk of the deadline, not at a count.
        assert report.duration_seconds >= 0.5
