"""Golden comparison: the kernel refactor is behavior-preserving.

``tests/golden/machine_semantics.json`` was recorded on the paper
suite (reduced random ensemble, L6 machine) *before* the machine
semantics moved into ``repro.core`` — see ``tests/record_golden.py``.
This test recompiles, re-optimizes and re-simulates every suite member
and asserts the observable outcomes are identical:

* the exact op stream of both compilers (content digest),
* every ``SimulationReport`` field, floats compared by exact ``repr``
  (the kernel observers accumulate in the same order as the old
  monolithic simulator loop, so not even the last ulp may drift),
* the pass pipeline's accept/revert decisions and per-pass deltas,
* the final per-trap chains of every stream.

If a deliberate semantic change ever invalidates this fixture,
re-record it with ``PYTHONPATH=src python tests/record_golden.py`` and
justify the diff in the commit message.
"""

from __future__ import annotations

import json
import os

import pytest

from golden_util import circuit_case

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "golden",
    "machine_semantics.json",
)


def _load_golden() -> dict:
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)


GOLDEN = _load_golden()
_CASES = {case["circuit"]: case for case in GOLDEN["cases"]}


@pytest.fixture(scope="module")
def machine():
    from repro.arch.presets import l6_machine

    return l6_machine()


@pytest.fixture(scope="module")
def suite():
    from repro.bench.suite import paper_suite

    return {circuit.name: circuit for circuit in paper_suite(full=False)}


def test_golden_covers_current_suite(suite):
    assert sorted(_CASES) == sorted(suite), (
        "paper suite membership changed; re-record the golden fixture"
    )


@pytest.mark.parametrize("name", sorted(_CASES))
def test_case_matches_golden(name, suite, machine):
    expected = _CASES[name]
    actual = circuit_case(suite[name], machine)
    # Compare field by field for a readable diff on failure.
    for key in expected:
        assert actual[key] == expected[key], (
            f"{name}: {key} diverged from the pre-kernel recording"
        )
