"""Resilience-layer tests: fault plans, retry policy, the supervised
pool (crash / timeout / poison handling), chaos caches, and the
zero-lost + bit-identical chaos acceptance run."""

import json
import pickle
import signal
from contextlib import contextmanager
from time import sleep

import pytest

from repro import obs
from repro.arch import linear_topology, uniform_machine
from repro.batch import BatchRunner, CompileJob, ResultCache, sweep
from repro.bench import random_circuit
from repro.compiler.config import CompilerConfig
from repro.resilience import (
    CHAOS_PRESETS,
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_STALL,
    ChaosCache,
    FaultPlan,
    InjectedFaultError,
    RetryPolicy,
    Supervisor,
    load_fault_plan,
)

from test_batch import result_blob


def tiny_machine():
    return uniform_machine(linear_topology(3), 6, 2)


def tiny_jobs(n=4, qubits=8, gates=30):
    machine = tiny_machine()
    circuits = [random_circuit(qubits, gates, seed=s) for s in range(n)]
    return sweep(circuits, machine, CompilerConfig(name="cfg"))


#: Retry curve tuned for tests: effectively instant backoff.
FAST_RETRY = dict(backoff_base=0.005, backoff_cap=0.02, jitter=0.5)


@contextmanager
def no_hang(seconds=120):
    """Fail the test (instead of hanging the suite) if the block takes
    longer than ``seconds`` — the regression the bounded-poll design
    exists to prevent."""

    def fire(signum, frame):
        raise AssertionError(f"block exceeded {seconds}s: runner hang")

    previous = signal.signal(signal.SIGALRM, fire)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


class TestFaultPlan:
    def test_decide_is_pure_and_order_independent(self):
        plan = FaultPlan(seed=5, error_rate=0.2, crash_rate=0.2, stall_rate=0.2)
        keys = [f"key-{i}" for i in range(50)]
        forward = [plan.decide(k, 0) for k in keys]
        backward = [plan.decide(k, 0) for k in reversed(keys)]
        assert forward == list(reversed(backward))
        again = FaultPlan.from_dict(plan.to_dict())
        assert [again.decide(k, 0) for k in keys] == forward

    def test_rates_partition_the_draw(self):
        plan = FaultPlan(seed=9, error_rate=0.3, crash_rate=0.3, stall_rate=0.3)
        kinds = {plan.decide(f"k{i}", 0) for i in range(300)}
        assert kinds == {FAULT_ERROR, FAULT_CRASH, FAULT_STALL, None}

    def test_max_faults_per_job_bounds_attempts(self):
        plan = FaultPlan(seed=1, error_rate=1.0, max_faults_per_job=2)
        assert plan.decide("job", 0) == FAULT_ERROR
        assert plan.decide("job", 1) == FAULT_ERROR
        assert plan.decide("job", 2) is None  # clean attempt guaranteed

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=1, error_rate=0.5)
        b = FaultPlan(seed=2, error_rate=0.5)
        keys = [f"k{i}" for i in range(60)]
        assert [a.decide(k, 0) for k in keys] != [b.decide(k, 0) for k in keys]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(error_rate=1.2),
            dict(crash_rate=-0.1),
            dict(error_rate=0.6, crash_rate=0.6),
            dict(stall_seconds=0.0),
            dict(max_faults_per_job=-1),
            dict(cache_read_corrupt_rate=2.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=77,
            error_rate=0.1,
            crash_rate=0.05,
            stall_rate=0.02,
            stall_seconds=1.5,
            cache_write_corrupt_rate=0.2,
            max_faults_per_job=3,
        )
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert load_fault_plan(str(path)) == plan

    def test_presets_resolve(self):
        for name in CHAOS_PRESETS:
            assert load_fault_plan(name) is CHAOS_PRESETS[name]
        with pytest.raises(ValueError):
            load_fault_plan("no-such-plan")


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.1, backoff_cap=0.5, jitter=0.5, seed=3
        )
        delays = [policy.backoff("job", n) for n in range(1, 8)]
        assert delays == [policy.backoff("job", n) for n in range(1, 8)]
        assert all(0.0 <= d <= 0.5 for d in delays)
        # The un-jittered curve doubles until the cap.
        flat = RetryPolicy(backoff_base=0.1, backoff_cap=0.5, jitter=0.0)
        assert [flat.backoff("k", n) for n in range(1, 5)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.5),
        ]

    def test_round_trip_and_validation(self):
        policy = RetryPolicy(max_attempts=4, poison_threshold=3, seed=9)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(poison_threshold=0)


class TestSupervisedOutcomes:
    def test_injected_error_is_retried_to_success(self):
        jobs = tiny_jobs(2)
        plan = FaultPlan(seed=1, error_rate=1.0, max_faults_per_job=1)
        runner = BatchRunner(
            n_jobs=2,
            retry=RetryPolicy(max_attempts=2, **FAST_RETRY),
            chaos=plan,
        )
        with no_hang():
            results = runner.run(jobs)
        assert all(r.ok for r in results)
        assert all(r.attempts == 2 for r in results)
        assert all(r.outcome == "ok" for r in results)
        assert all(len(r.attempt_seconds) == 2 for r in results)

    def test_exhausted_budget_lands_failed_with_real_exception(self):
        jobs = tiny_jobs(1)
        plan = FaultPlan(seed=1, error_rate=1.0, max_faults_per_job=5)
        runner = BatchRunner(
            n_jobs=1,
            retry=RetryPolicy(max_attempts=3, **FAST_RETRY),
            chaos=plan,
        )
        with no_hang():
            (result,) = runner.run(jobs)
        assert not result.ok
        assert result.outcome == "failed"
        assert result.attempts == 3
        assert isinstance(result.exception, InjectedFaultError)
        assert "InjectedFaultError" in result.error

    def test_worker_crash_is_detected_and_retried(self):
        jobs = tiny_jobs(1)
        plan = FaultPlan(seed=1, crash_rate=1.0, max_faults_per_job=1)
        runner = BatchRunner(
            n_jobs=1,
            retry=RetryPolicy(max_attempts=2, **FAST_RETRY),
            chaos=plan,
        )
        with no_hang(), obs.observe() as observation:
            (result,) = runner.run(jobs)
        assert result.ok
        assert result.attempts == 2
        assert observation.metrics.counter("batch.worker_deaths") == 1
        assert observation.metrics.counter("batch.retries") == 1
        assert observation.metrics.counter("chaos.injected.crash") == 1

    def test_poisoned_job_is_quarantined_not_retried_forever(self):
        jobs = tiny_jobs(1)
        plan = FaultPlan(seed=1, crash_rate=1.0, max_faults_per_job=10)
        runner = BatchRunner(
            n_jobs=1,
            retry=RetryPolicy(max_attempts=8, poison_threshold=2, **FAST_RETRY),
            chaos=plan,
        )
        with no_hang(), obs.observe() as observation:
            (result,) = runner.run(jobs)
        assert not result.ok
        assert result.outcome == "poisoned"
        assert result.attempts == 2  # stopped at the threshold, not 8
        assert "poisoned" in result.error
        assert observation.metrics.counter("batch.quarantined") == 1
        assert observation.metrics.counter("batch.worker_deaths") == 2

    def test_stall_hits_deadline_and_retries_clean(self):
        jobs = tiny_jobs(1)
        plan = FaultPlan(
            seed=1, stall_rate=1.0, stall_seconds=30.0, max_faults_per_job=1
        )
        runner = BatchRunner(
            n_jobs=1,
            timeout=0.3,
            retry=RetryPolicy(max_attempts=2, **FAST_RETRY),
            chaos=plan,
        )
        with no_hang(), obs.observe() as observation:
            (result,) = runner.run(jobs)
        assert result.ok
        assert result.attempts == 2
        # First attempt settled near the 0.3s deadline, not the 30s stall.
        assert result.attempt_seconds[0] < 5.0
        assert observation.metrics.counter("batch.timeouts") == 1

    def test_per_job_deadline_overrides_runner_timeout(self):
        import dataclasses

        (job,) = tiny_jobs(1)
        slow_plan = FaultPlan(
            seed=1, stall_rate=1.0, stall_seconds=30.0, max_faults_per_job=10
        )
        job = dataclasses.replace(job, deadline=0.3)
        runner = BatchRunner(n_jobs=1, chaos=slow_plan)  # no runner timeout
        with no_hang():
            (result,) = runner.run([job])
        assert not result.ok
        assert result.outcome == "timeout"

    def test_deadline_field_does_not_change_fingerprint(self):
        import dataclasses

        (job,) = tiny_jobs(1)
        assert (
            dataclasses.replace(job, deadline=1.0).fingerprint()
            == job.fingerprint()
        )


class TestHardKilledWorker:
    def test_externally_killed_worker_cannot_hang_the_run(self, monkeypatch):
        """Satellite regression: SIGKILL a worker mid-job; the bounded
        poll + liveness check must surface a terminal ``crashed``
        result instead of waiting forever."""
        import repro.batch.runner as runner_module

        real_execute_job = runner_module.execute_job

        def stalling_execute_job(job):
            if job.circuit.name.startswith("slow"):
                sleep(300.0)
            return real_execute_job(job)

        # fork start method: workers inherit the patched module.
        monkeypatch.setattr(
            runner_module, "execute_job", stalling_execute_job
        )
        machine = tiny_machine()
        slow = random_circuit(8, 30, seed=1)
        slow.name = "slow-victim"
        job = CompileJob(slow, machine, CompilerConfig(name="cfg"))
        with no_hang():
            supervisor = Supervisor(1)
            try:
                supervisor.submit(0, job, job.fingerprint(), False)
                sleep(0.3)  # let the worker pick the job up
                supervisor.pool._workers[0].process.kill()
                terminals = []
                while not terminals:
                    terminals = supervisor.poll(0.25)
            finally:
                supervisor.close()
        (result,) = terminals
        assert result.outcome == "crashed"
        assert not result.ok
        assert "worker process died" in result.error

    def test_run_timed_survives_crashed_workers(self):
        """The old ``completions.get(timeout=None)`` path hung forever
        when a worker vanished; every job must now settle."""
        jobs = tiny_jobs(4)
        plan = FaultPlan(seed=1, crash_rate=1.0, max_faults_per_job=1)
        runner = BatchRunner(n_jobs=2, chaos=plan)  # no retry budget
        with no_hang():
            timed = runner.run_timed(jobs)
        assert len(timed) == len(jobs)
        outcomes = {t.result.outcome for t in timed}
        assert outcomes == {"crashed"}


def _chaos_plan_for(keys, error_rate=0.25, crash_rate=0.2, stall_rate=0.2):
    """Deterministically pick a plan seed that injects all three fault
    kinds across ``keys`` (decide() is pure, so the search is exact)."""
    for seed in range(10_000):
        plan = FaultPlan(
            seed=seed,
            error_rate=error_rate,
            crash_rate=crash_rate,
            stall_rate=stall_rate,
            stall_seconds=30.0,
            max_faults_per_job=1,
        )
        kinds = [plan.decide(k, 0) for k in keys]
        if (
            FAULT_ERROR in kinds
            and FAULT_CRASH in kinds
            and FAULT_STALL in kinds
        ):
            return plan, kinds
    raise AssertionError("no seed found — rates too low for the key set")


class TestChaosAcceptance:
    def test_zero_lost_and_bit_identical_under_fire(self):
        """The issue's acceptance run: >=10% of jobs faulted including
        >=1 hard-exit and >=1 timeout; every job reaches a terminal
        result and retried successes are bit-identical to a fault-free
        run."""
        jobs = tiny_jobs(10)
        keys = [j.fingerprint() for j in jobs]
        plan, kinds = _chaos_plan_for(keys)
        faulted = sum(1 for k in kinds if k)
        assert faulted >= len(jobs) * 0.10
        assert kinds.count(FAULT_CRASH) >= 1
        assert kinds.count(FAULT_STALL) >= 1  # becomes a timeout

        clean = BatchRunner(n_jobs=2).run(jobs)
        runner = BatchRunner(
            n_jobs=2,
            timeout=0.5,
            retry=RetryPolicy(max_attempts=3, **FAST_RETRY),
            chaos=plan,
        )
        with no_hang(), obs.observe() as observation:
            chaotic = runner.run(jobs)

        assert len(chaotic) == len(jobs)  # zero lost: all terminal
        for kind, clean_result, chaos_result in zip(kinds, clean, chaotic):
            assert chaos_result.ok, chaos_result.error
            assert result_blob(chaos_result.result) == result_blob(
                clean_result.result
            )
            if kind is None:
                assert chaos_result.attempts == 1
            else:
                assert chaos_result.attempts == 2

        counters = observation.metrics.counters
        assert counters["chaos.injected"] == faulted
        assert counters["batch.worker_deaths"] >= 1
        assert counters["batch.timeouts"] >= 1
        assert counters["batch.retries"] == faulted

    def test_chaos_decisions_identical_across_worker_counts(self):
        jobs = tiny_jobs(6)
        keys = [j.fingerprint() for j in jobs]
        plan, _kinds = _chaos_plan_for(keys)
        retry = RetryPolicy(max_attempts=3, **FAST_RETRY)
        with no_hang():
            serial = BatchRunner(
                n_jobs=1, timeout=0.5, retry=retry, chaos=plan
            ).run(jobs)
            parallel = BatchRunner(
                n_jobs=3, timeout=0.5, retry=retry, chaos=plan
            ).run(jobs)
        for a, b in zip(serial, parallel):
            assert a.attempts == b.attempts
            assert a.outcome == b.outcome
            assert result_blob(a.result) == result_blob(b.result)


class TestChaosCache:
    def test_corrupted_write_is_quarantined_on_read(self, tmp_path):
        inner = ResultCache(tmp_path / "cache")
        plan = FaultPlan(seed=1, cache_write_corrupt_rate=1.0)
        cache = ChaosCache(inner, plan)
        with obs.observe() as observation:
            cache.put("ab" + "c" * 62, {"payload": 1})
            assert cache.corrupted_writes == 1
            assert cache.get("ab" + "c" * 62) is None  # corrupt -> miss
        assert inner.stats.corrupt == 1
        assert observation.metrics.counter("cache.corrupt") == 1
        # Quarantined sidecar, not a live entry.
        assert len(inner) == 0
        assert list((tmp_path / "cache").rglob("*.pkl.corrupt"))

    def test_read_corruption_stream_is_per_lookup(self, tmp_path):
        inner = ResultCache(tmp_path / "cache")
        key = "de" + "f" * 62
        # Corrupt only some lookups; find a plan where lookup 0 is
        # clean so the first get is a genuine hit.
        plan = next(
            p
            for p in (
                FaultPlan(seed=s, cache_read_corrupt_rate=0.5)
                for s in range(100)
            )
            if not p.corrupt_read(key, 0) and p.corrupt_read(key, 1)
        )
        cache = ChaosCache(inner, plan)
        cache.put(key, {"payload": 2})
        assert cache.get(key) == {"payload": 2}  # lookup 0: clean hit
        assert cache.get(key) is None  # lookup 1: corrupted -> miss
        assert cache.corrupted_reads == 1

    def test_chaos_cache_end_to_end_recomputes(self, tmp_path):
        jobs = tiny_jobs(3)
        plan = FaultPlan(seed=1, cache_write_corrupt_rate=1.0)
        cache = ChaosCache(ResultCache(tmp_path / "cache"), plan)
        runner = BatchRunner(n_jobs=1, cache=cache, chaos=plan)
        with no_hang():
            first = runner.run(jobs)
            second = runner.run(jobs)  # every entry corrupt: recompute
        assert all(r.ok for r in first + second)
        assert not any(r.cache_hit for r in second)
        for a, b in zip(first, second):
            assert result_blob(a.result) == result_blob(b.result)


class TestInertness:
    def test_disabled_machinery_never_touches_the_supervisor(
        self, monkeypatch
    ):
        """Without resilience options the legacy path runs: the
        supervisor layer is not even constructed (inert by
        construction, which is what the bench A/B gate measures)."""
        import repro.resilience.supervisor as supervisor_module

        def boom(*args, **kwargs):
            raise AssertionError("supervisor constructed on legacy path")

        monkeypatch.setattr(supervisor_module, "Supervisor", boom)
        jobs = tiny_jobs(3)
        results = BatchRunner(n_jobs=1).run(jobs)
        assert all(r.ok for r in results)
        # Pooled run() without resilience options: still legacy.
        results = BatchRunner(n_jobs=2).run(jobs)
        assert all(r.ok for r in results)

    def test_default_jobresult_fields_are_inert(self):
        jobs = tiny_jobs(1)
        (result,) = BatchRunner().run(jobs)
        assert result.outcome == "ok"
        assert result.attempts == 1
        assert result.attempt_seconds is None


class TestScenarioChaos:
    def test_scenario_chaos_round_trip(self):
        from repro.loadgen import Scenario, WorkloadItem

        scenario = Scenario(
            name="chaotic",
            mix=(WorkloadItem("random", qubits=8, gates=30),),
            machines=("linear3",),
            jobs=4,
            consumers=1,
            chaos=FaultPlan(seed=3, error_rate=0.2),
            job_timeout=2.0,
            max_attempts=3,
        )
        hydrated = Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict()))
        )
        assert hydrated == scenario
        assert hydrated.chaos == scenario.chaos

    def test_scenario_validation(self):
        from repro.loadgen import Scenario, WorkloadItem

        mix = (WorkloadItem("random", qubits=8, gates=30),)
        with pytest.raises(ValueError):
            Scenario(name="x", mix=mix, jobs=2, max_attempts=0)
        with pytest.raises(ValueError):
            Scenario(name="x", mix=mix, jobs=2, job_timeout=-1.0)

    def test_load_run_under_chaos_loses_nothing(self):
        from repro.loadgen import LoadRunner, load_scenario

        scenario = load_scenario("smoke")
        keys = [j.fingerprint() for j in scenario.draw_jobs(12)]
        plan, _ = _chaos_plan_for(list(dict.fromkeys(keys)))
        runner = LoadRunner(
            scenario,
            chaos=plan,
            max_attempts=3,
            job_timeout=0.5,
        )
        with no_hang():
            report = runner.run()
        resilience = report.resilience
        assert resilience["enabled"]
        assert resilience["submitted"] == 12
        assert resilience["lost"] == 0
        assert sum(resilience["injected"].values()) >= 2
        assert resilience["worker_deaths"] >= 1
        assert resilience["timeouts"] >= 1
        assert report.counts["jobs"] == 12
        assert report.counts["ok"] == 12  # all retried to success
        assert resilience["outcomes"] == {"ok": 12}


class TestResultCacheQuarantine:
    def test_truncated_entry_quarantined_once(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "aa" + "b" * 62
        cache.put(key, {"payload": 3})
        path = cache._path(key)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # truncate mid-pickle
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # moved aside
        assert path.with_suffix(".pkl.corrupt").exists()
        # Second lookup: a plain miss, not another corruption event.
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 2

    def test_garbage_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "cc" + "d" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"this is not a pickle at all")
        with obs.observe() as observation:
            assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert observation.metrics.counter("cache.corrupt") == 1
        assert not path.exists()
        assert "corrupt quarantined" in str(cache.stats)

    def test_quarantined_entries_leave_len_and_clear_alone(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        good = "ee" + "f" * 62
        bad = "11" + "2" * 62
        cache.put(good, 1)
        cache.put(bad, 2)
        bad_path = cache._path(bad)
        bad_path.write_bytes(b"garbage")
        assert cache.get(bad) is None
        assert len(cache) == 1  # the sidecar is not an entry
        assert cache.clear() == 1


class TestErrorFidelity:
    """JobResult error fidelity across the pickle boundary (satellite)."""

    def failing_jobs(self):
        # A machine too small for the circuit: compilation raises a
        # genuine (picklable) CompilationError inside the worker.
        machine = uniform_machine(linear_topology(2), 4, 2)
        circuits = [random_circuit(10, 60, seed=s) for s in (1, 2)]
        return sweep(circuits, machine, CompilerConfig(name="cfg"))

    def test_exception_type_and_message_survive_the_pool(self):
        jobs = self.failing_jobs()
        serial = BatchRunner(n_jobs=1).run(jobs)
        pooled = BatchRunner(n_jobs=2).run(jobs)
        for a, b in zip(serial, pooled):
            assert not a.ok and not b.ok
            assert type(a.exception) is type(b.exception)
            assert str(a.exception) == str(b.exception)
            assert b.error and type(b.exception).__name__ in b.error
            # The terminal record itself must round-trip pickling
            # (results cross process boundaries and land in caches).
            clone = pickle.loads(pickle.dumps(b))
            assert str(clone.exception) == str(b.exception)

    def test_unpicklable_exception_degrades_to_error_string(
        self, monkeypatch
    ):
        import repro.batch.runner as runner_module

        class UnpicklableError(RuntimeError):
            def __init__(self):
                super().__init__("cursed payload")
                self.payload = lambda: None  # never pickles

        def explode(job):
            raise UnpicklableError()

        # fork start method: workers inherit the patched module.
        monkeypatch.setattr(runner_module, "execute_job", explode)
        jobs = tiny_jobs(2)
        with no_hang():
            results = BatchRunner(n_jobs=2).run(jobs)
        for result in results:
            assert not result.ok
            assert result.outcome == "failed"
            assert result.exception is None  # degraded, not crashed
            assert "UnpicklableError" in result.error
            assert "cursed payload" in result.error
