"""Cross-module integration tests at near-paper scale (kept fast)."""

import pytest

from repro import (
    CompilerConfig,
    Simulator,
    compile_circuit,
    decompose_circuit,
    l6_machine,
    parse_qasm,
)
from repro.bench import (
    qaoa_circuit,
    qft_circuit,
    quadratic_form_circuit,
    squareroot_circuit,
    supremacy_circuit,
)
from repro.circuits.qasm_writer import circuit_to_qasm
from repro.compiler.mapping import greedy_initial_mapping
from repro.eval import compare

MACHINE = l6_machine()


@pytest.mark.parametrize(
    "factory",
    [
        lambda: supremacy_circuit(cycles=8),
        lambda: qaoa_circuit(rounds=2),
        lambda: squareroot_circuit(squarer_iterations=1),
        lambda: qft_circuit(num_qubits=32),
        lambda: quadratic_form_circuit(num_linear=8, num_quadratic=12),
    ],
    ids=["supremacy", "qaoa", "squareroot", "qft", "quadraticform"],
)
class TestBenchmarksEndToEnd:
    def test_compiles_and_simulates_both_configs(self, factory):
        circuit = factory()
        chains = greedy_initial_mapping(circuit, MACHINE)
        for config in (CompilerConfig.baseline(), CompilerConfig.optimized()):
            result = compile_circuit(
                circuit, MACHINE, config, initial_chains=chains
            )
            report = Simulator(MACHINE).run(
                result.schedule, result.initial_chains
            )
            assert report.num_gates == len(circuit)
            assert report.duration > 0

    def test_optimized_close_or_better_at_reduced_scale(self, factory):
        """At toy scale the win is noisy; the strict every-circuit win
        (the paper's claim) is asserted at full scale below."""
        circuit = factory()
        comparison = compare(circuit, MACHINE, simulate=False)
        assert comparison.optimized.num_shuttles <= int(
            comparison.baseline.num_shuttles * 1.10
        )


class TestFullScaleWins:
    """Table II's stability claim at the paper's benchmark sizes."""

    @pytest.mark.parametrize(
        "factory",
        [
            supremacy_circuit,
            qaoa_circuit,
            squareroot_circuit,
            qft_circuit,
            quadratic_form_circuit,
        ],
        ids=["supremacy", "qaoa", "squareroot", "qft", "quadraticform"],
    )
    def test_optimized_strictly_better_at_paper_scale(self, factory):
        comparison = compare(factory(), MACHINE, simulate=False)
        assert (
            comparison.optimized.num_shuttles
            < comparison.baseline.num_shuttles
        )


class TestQasmPipeline:
    def test_qasm_to_schedule(self):
        """Full front-to-back: QASM text -> parse -> decompose ->
        compile -> simulate."""
        source_lines = ['OPENQASM 2.0;', 'include "qelib1.inc";', "qreg q[12];"]
        for i in range(11):
            source_lines.append(f"cx q[{i}], q[{i + 1}];")
        source_lines.append("cu1(pi/4) q[0], q[11];")
        circuit = parse_qasm("\n".join(source_lines))
        native = decompose_circuit(circuit, keep_one_qubit=False)
        result = compile_circuit(native, MACHINE)
        report = Simulator(MACHINE).run(result.schedule, result.initial_chains)
        assert report.num_two_qubit_gates == 11 + 2

    def test_generated_benchmarks_emit_valid_qasm(self):
        circuit = qft_circuit(num_qubits=8)
        reparsed = parse_qasm(circuit_to_qasm(circuit))
        assert reparsed.num_qubits == 8


class TestTopologySweep:
    """Extension: the compilers work on non-linear trap graphs."""

    @pytest.mark.parametrize("preset", ["ring", "grid"])
    def test_other_topologies(self, preset):
        from repro.arch import grid_machine, ring_machine

        machine = (
            ring_machine(6) if preset == "ring" else grid_machine(2, 3)
        )
        circuit = qft_circuit(num_qubits=32)
        comparison = compare(circuit, machine, simulate=True)
        # No paper claim for these topologies; require near-parity.
        assert comparison.optimized.num_shuttles <= int(
            comparison.baseline.num_shuttles * 1.10
        )

    def test_ring_beats_line_on_wraparound_traffic(self):
        """A ring halves the worst-case trap distance; compiled shuttle
        counts should not be higher than on the line."""
        from repro.arch import ring_machine, linear_machine
        import random

        rng = random.Random(5)
        from repro.circuits.circuit import Circuit

        circuit = Circuit(60, name="wrap")
        for _ in range(300):
            a, b = rng.sample(range(60), 2)
            circuit.add("ms", a, b)
        line = compare(circuit, linear_machine(6), simulate=False)
        ring = compare(circuit, ring_machine(6), simulate=False)
        assert (
            ring.optimized.num_shuttles <= line.optimized.num_shuttles
        )
