"""Unit tests for the gate dependency DAG (paper Section II-A)."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.dag import DependencyDAG
from repro.circuits.gate import Gate


def paper_fig2_circuit() -> Circuit:
    """The 9-gate sample program of the paper's Fig. 2a."""
    pairs = [
        (0, 1),  # g1
        (2, 3),  # g2
        (2, 0),  # g3
        (4, 5),  # g4
        (0, 3),  # g5
        (2, 5),  # g6
        (4, 5),  # g7
        (0, 1),  # g8
        (2, 3),  # g9
    ]
    return Circuit(6, [Gate("ms", p) for p in pairs], name="fig2")


class TestPaperFig2:
    """The DAG must reproduce the paper's Fig. 2b layer structure."""

    def test_layers_match_figure(self):
        dag = DependencyDAG(paper_fig2_circuit())
        # Fig. 2b: L0 = {g1, g2, g4}, L1 = {g3}, L2 = {g5, g6},
        # L3 = {g7, g8, g9}  (1-indexed gates; 0-indexed here)
        assert dag.layer(0) == (0, 1, 3)
        assert dag.layer(1) == (2,)
        assert dag.layer(2) == (4, 5)
        assert dag.layer(3) == (6, 7, 8)
        assert dag.num_layers == 4

    def test_g5_and_g6_depend_on_g3(self):
        dag = DependencyDAG(paper_fig2_circuit())
        assert 2 in dag.predecessors(4)  # g5 <- g3
        assert 2 in dag.predecessors(5)  # g6 <- g3

    def test_successors_inverse_of_predecessors(self):
        dag = DependencyDAG(paper_fig2_circuit())
        for index in range(len(dag)):
            for pred in dag.predecessors(index):
                assert index in dag.successors(pred)

    def test_topological_order_is_valid(self):
        dag = DependencyDAG(paper_fig2_circuit())
        order = dag.topological_order()
        assert dag.is_valid_order(order)

    def test_earliest_ready_first_order(self):
        dag = DependencyDAG(paper_fig2_circuit())
        # Gates are emitted as they become ready (FIFO), like the
        # paper's Fig. 2c order (which likewise interleaves within
        # layers: g2 g1 g4 g3 g5 g6 g8 g9 g7).
        order = dag.topological_order()
        assert order == [0, 1, 3, 2, 4, 5, 7, 6, 8]
        # Layer numbers never decrease along the emitted order by more
        # than the readiness structure allows: every prefix is closed
        # under predecessors.
        executed = set()
        for index in order:
            assert all(p in executed for p in dag.predecessors(index))
            executed.add(index)


class TestDagBasics:
    def test_empty_circuit(self):
        dag = DependencyDAG(Circuit(2))
        assert len(dag) == 0
        assert dag.topological_order() == []
        assert dag.num_layers == 0

    def test_single_gate(self):
        dag = DependencyDAG(Circuit(2).add("ms", 0, 1))
        assert dag.layer_of(0) == 0
        assert dag.predecessors(0) == ()
        assert dag.successors(0) == ()

    def test_serial_chain_layers(self):
        circuit = Circuit(2)
        for _ in range(4):
            circuit.add("ms", 0, 1)
        dag = DependencyDAG(circuit)
        assert [dag.layer_of(i) for i in range(4)] == [0, 1, 2, 3]

    def test_one_qubit_gates_chain_on_their_qubit(self):
        circuit = Circuit(2).add("h", 0).add("h", 0).add("h", 1)
        dag = DependencyDAG(circuit)
        assert dag.layer_of(0) == 0
        assert dag.layer_of(1) == 1
        assert dag.layer_of(2) == 0

    def test_gate_accessor(self):
        circuit = Circuit(2).add("ms", 0, 1)
        assert DependencyDAG(circuit).gate(0) == Gate("ms", (0, 1))

    def test_single_predecessor_edge_per_pair(self):
        # Both qubits of gate 1 last touched by gate 0: one edge only.
        circuit = Circuit(2).add("ms", 0, 1).add("ms", 0, 1)
        dag = DependencyDAG(circuit)
        assert dag.predecessors(1) == (0,)

    def test_layers_partition_all_gates(self):
        dag = DependencyDAG(paper_fig2_circuit())
        seen = [i for layer in dag.layers() for i in layer]
        assert sorted(seen) == list(range(9))

    def test_layers_are_cached_immutable_tuples(self):
        # layers()/layer() hand out the DAG's own frozen groups: no
        # per-call copy (same object every time), and no way for a
        # caller to mutate the DAG through the return value.
        dag = DependencyDAG(paper_fig2_circuit())
        assert dag.layers() is dag.layers()
        assert dag.layer(0) is dag.layer(0)
        with pytest.raises((TypeError, AttributeError)):
            dag.layers()[0].append(99)
        with pytest.raises(TypeError):
            dag.layer(0)[0] = 99
        assert dag.layer(0) == (0, 1, 3)


class TestOrderValidation:
    def test_is_valid_order_rejects_non_permutation(self):
        dag = DependencyDAG(Circuit(2).add("ms", 0, 1).add("ms", 0, 1))
        assert not dag.is_valid_order([0])
        assert not dag.is_valid_order([0, 0])

    def test_is_valid_order_rejects_dependency_violation(self):
        dag = DependencyDAG(Circuit(2).add("ms", 0, 1).add("ms", 0, 1))
        assert not dag.is_valid_order([1, 0])
        assert dag.is_valid_order([0, 1])

    def test_ready_after(self):
        dag = DependencyDAG(paper_fig2_circuit())
        # Initially the three layer-0 gates are ready.
        assert dag.ready_after([]) == {0, 1, 3}
        # After g1 and g2 execute, g3 becomes ready (and g4 still is).
        assert dag.ready_after([0, 1]) == {2, 3}

    def test_ready_after_all_executed(self):
        dag = DependencyDAG(paper_fig2_circuit())
        assert dag.ready_after(range(9)) == set()
