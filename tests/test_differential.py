"""Differential property test: simulator and verifier agree exactly.

Before the kernel, ``Simulator.run`` and ``verify_schedule``
re-implemented the machine's op-application rules independently and
could in principle drift apart; both now replay through
``repro.core``, so they accept and reject *identical* schedule sets by
construction.  This test pins that property observably: on random
circuits compiled to linear/ring/grid machines, the two layers agree
on every legal compiled schedule and on every mutated (corrupted-op)
variant.
"""

import random
import zlib

import pytest

from repro.arch import grid_machine, linear_machine, ring_machine
from repro.circuits.circuit import Circuit
from repro.compiler import CompilerConfig, compile_circuit
from repro.sim import Schedule, SimulationError, Simulator
from repro.sim.ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp
from repro.passes.verify import VerificationError, verify_schedule

MACHINES = {
    "linear": lambda: linear_machine(4, capacity=4, comm_capacity=1),
    "ring": lambda: ring_machine(5, capacity=4, comm_capacity=1),
    "grid": lambda: grid_machine(2, 3, capacity=4, comm_capacity=1),
}

CONFIGS = {
    "baseline": CompilerConfig.baseline,
    "optimized": CompilerConfig.optimized,
    "chain-order": lambda: CompilerConfig.optimized().variant(
        track_chain_order=True
    ),
}


def random_circuit(rng: random.Random, num_qubits: int, num_gates: int):
    circuit = Circuit(num_qubits, name=f"diff-{num_qubits}q")
    for _ in range(num_gates):
        if rng.random() < 0.2:
            circuit.add("x", rng.randrange(num_qubits))
        else:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.add("ms", a, b)
    return circuit


def simulator_accepts(machine, schedule, chains) -> bool:
    try:
        Simulator(machine).run(schedule, {t: list(c) for t, c in chains.items()})
    except SimulationError:
        return False
    return True


def verifier_accepts(machine, schedule, chains) -> bool:
    try:
        verify_schedule(machine, schedule, chains)
    except VerificationError:
        return False
    return True


def mutations(rng: random.Random, ops: list):
    """A generator of corrupted op streams (one mutation each).

    Covers every rule family: placement (wrong trap), capacity
    (duplicated merge traffic), transit discipline (dropped / doubled
    split+merge, re-ordered moves), connectivity (skipped hop) and
    adjacency (shuffled swap operands).
    """
    n = len(ops)

    def copy():
        return list(ops)

    # Drop one random op of each kind present.
    for cls in (GateOp, SplitOp, MoveOp, MergeOp, SwapOp):
        indices = [i for i, op in enumerate(ops) if isinstance(op, cls)]
        if indices:
            mutated = copy()
            del mutated[rng.choice(indices)]
            yield f"drop-{cls.__name__}", mutated

    # Duplicate one op of each kind present.
    for cls in (SplitOp, MoveOp, MergeOp):
        indices = [i for i, op in enumerate(ops) if isinstance(op, cls)]
        if indices:
            mutated = copy()
            index = rng.choice(indices)
            mutated.insert(index, mutated[index])
            yield f"duplicate-{cls.__name__}", mutated

    # Retarget a gate to another trap.
    gate_indices = [i for i, op in enumerate(ops) if isinstance(op, GateOp)]
    if gate_indices:
        index = rng.choice(gate_indices)
        op = ops[index]
        mutated = copy()
        mutated[index] = GateOp(gate=op.gate, trap=op.trap + 1)
        yield "retarget-gate", mutated

    # Skip a hop: rewrite a move's destination two steps over.
    move_indices = [i for i, op in enumerate(ops) if isinstance(op, MoveOp)]
    if move_indices:
        index = rng.choice(move_indices)
        op = ops[index]
        mutated = copy()
        mutated[index] = MoveOp(
            ion=op.ion, src=op.src, dst=op.dst + 2, reason=op.reason
        )
        yield "skip-hop", mutated

    # Swap two random ops (may or may not stay legal — the point is
    # that both layers give the same verdict either way).
    if n >= 2:
        a, b = rng.sample(range(n), 2)
        mutated = copy()
        mutated[a], mutated[b] = mutated[b], mutated[a]
        yield "transpose", mutated


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_simulator_and_verifier_agree(machine_name, config_name):
    # str hash() is salted per process; crc32 keeps the seed stable.
    rng = random.Random(
        zlib.crc32(f"{machine_name}/{config_name}".encode())
    )
    machine = MACHINES[machine_name]()
    config = CONFIGS[config_name]()

    for trial in range(4):
        num_qubits = rng.randint(6, machine.load_capacity)
        circuit = random_circuit(rng, num_qubits, rng.randint(15, 40))
        result = compile_circuit(circuit, machine, config)
        chains = result.initial_chains
        schedule = result.schedule

        # Every compiled schedule is accepted by both layers.
        assert simulator_accepts(machine, schedule, chains)
        assert verifier_accepts(machine, schedule, chains)

        disagreements = []
        rejections = 0
        for label, mutated_ops in mutations(rng, list(schedule.ops)):
            mutated = Schedule(mutated_ops)
            sim_verdict = simulator_accepts(machine, mutated, chains)
            ver_verdict = verifier_accepts(machine, mutated, chains)
            if sim_verdict != ver_verdict:
                disagreements.append((label, sim_verdict, ver_verdict))
            if not sim_verdict:
                rejections += 1
        assert not disagreements, (
            f"{machine_name}/{config_name} trial {trial}: simulator and "
            f"verifier disagree on {disagreements}"
        )
        # Sanity: the mutation battery actually exercises rejections.
        if schedule.num_shuttles:
            assert rejections > 0
