"""Evaluation-harness tests: metrics, table builders, renderers."""

import math

import pytest

from repro.arch import linear_topology, uniform_machine
from repro.bench import qft_circuit, random_circuit
from repro.circuits.circuit import Circuit
from repro.compiler.config import CompilerConfig
from repro.eval import (
    aggregate,
    build_figure8,
    build_table2,
    build_table3,
    compare,
    heuristic_ablation,
    improvement_factor,
    overall_reduction,
    proximity_sweep,
    reduction_percent,
    render_bar_chart,
    render_figure8,
    render_markdown_table,
    render_sweep,
    render_table,
    render_table2,
    render_table3,
    run_suite,
    wins_everywhere,
)


def tiny_machine():
    return uniform_machine(linear_topology(3), 6, 2)


def tiny_suite():
    return [
        random_circuit(10, 60, seed=1),
        random_circuit(10, 60, seed=2),
    ]


@pytest.fixture(scope="module")
def comparisons():
    return run_suite(
        circuits=tiny_suite(), machine=tiny_machine(), simulate=True
    )


class TestMetrics:
    def test_reduction_percent(self):
        assert reduction_percent(100, 75) == 25.0
        assert reduction_percent(0, 0) == 0.0
        assert reduction_percent(50, 60) == -20.0

    def test_improvement_factor(self):
        assert improvement_factor(-1.0, -2.0) == pytest.approx(math.e)
        assert improvement_factor(-2.0, -2.0) == 1.0

    def test_aggregate(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.std == pytest.approx(1.0)
        assert agg.count == 3

    def test_aggregate_edge_cases(self):
        assert aggregate([]).count == 0
        assert aggregate([5.0]).std == 0.0

    def test_aggregate_str(self):
        assert str(aggregate([1.0, 3.0])) == "2.0 (1.4)"


class TestCompare:
    def test_compare_runs_both_configs(self, comparisons):
        comparison = comparisons[0]
        assert comparison.baseline.config_name == "baseline[7]"
        assert comparison.optimized.config_name == "this-work"
        assert comparison.baseline_report is not None

    def test_same_initial_mapping(self, comparisons):
        comparison = comparisons[0]
        assert comparison.baseline.initial_chains == (
            comparison.optimized.initial_chains
        )

    def test_metric_properties(self, comparisons):
        comparison = comparisons[0]
        assert comparison.shuttle_delta == (
            comparison.baseline.num_shuttles
            - comparison.optimized.num_shuttles
        )
        assert comparison.fidelity_improvement > 0.0

    def test_compare_without_simulation(self):
        comparison = compare(
            tiny_suite()[0], tiny_machine(), simulate=False
        )
        assert comparison.baseline_report is None
        with pytest.raises(ValueError):
            _ = comparison.fidelity_improvement

    def test_is_random_flag(self, comparisons):
        assert all(c.is_random for c in comparisons)
        qft_comp = compare(
            Circuit(4, name="QFT"), tiny_machine(), simulate=False
        )
        assert not qft_comp.is_random


class TestTableBuilders:
    def test_table2_random_aggregate_row(self, comparisons):
        rows = build_table2(comparisons)
        assert len(rows) == 1  # both circuits fold into one Random row
        assert rows[0].benchmark.startswith("Random")

    def test_table2_render_contains_headers(self, comparisons):
        text = render_table2(comparisons)
        assert "Benchmark" in text
        assert "%Delta" in text

    def test_table2_markdown(self, comparisons):
        text = render_table2(comparisons, markdown=True)
        assert text.startswith("| Benchmark")
        assert "|---" in text

    def test_table3_rows(self, comparisons):
        rows = build_table3(comparisons)
        assert len(rows) == 1
        text = render_table3(comparisons)
        assert "This work (s)" in text

    def test_figure8_bars(self, comparisons):
        bars = build_figure8(comparisons)
        assert len(bars) == 1
        assert bars[0].improvement > 0

    def test_figure8_render(self, comparisons):
        text = render_figure8(comparisons)
        assert "Improvement" in text
        assert "#" in text  # the ASCII chart

    def test_overall_reduction_and_wins(self, comparisons):
        value = overall_reduction(comparisons)
        assert isinstance(value, float)
        assert isinstance(wins_everywhere(comparisons), bool)


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_markdown(self):
        text = render_markdown_table(["x"], [["1"]])
        assert text == "| x |\n|---|\n| 1 |"

    def test_render_bar_chart(self):
        text = render_bar_chart(["one", "two"], [1.0, 2.0], unit="X")
        assert "one" in text
        assert "2.00X" in text

    def test_render_bar_chart_empty(self):
        assert render_bar_chart([], []) == "(no data)"


class TestAblations:
    def test_proximity_sweep_points(self):
        circuits = [random_circuit(10, 40, seed=3)]
        points = proximity_sweep(
            circuits, tiny_machine(), values=(2, None)
        )
        assert [p.label for p in points] == ["2", "inf"]
        assert all(p.mean_shuttles >= 0 for p in points)

    def test_heuristic_ablation_variants(self):
        circuits = [random_circuit(10, 40, seed=3)]
        points = heuristic_ablation(circuits, tiny_machine())
        labels = [p.label for p in points]
        assert "baseline [7]" in labels
        assert "full (this work)" in labels
        assert len(labels) == 13

    def test_render_sweep(self):
        circuits = [random_circuit(10, 40, seed=3)]
        points = proximity_sweep(circuits, tiny_machine(), values=(6,))
        text = render_sweep(points, "proximity")
        assert "proximity" in text
