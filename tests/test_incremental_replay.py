"""Property tests: incremental verification ≡ fresh full replay.

The checkpointed splice engine (:class:`repro.core.CheckpointedReplay`)
promises that verifying a rewritten schedule incrementally — restore
the nearest checkpoint, replay the divergent window, reuse or early
-exit the suffix — reaches *exactly* the verdict a from-scratch
:func:`repro.core.replay` of the rewritten stream would reach: the
same accept/reject answer, the same error message (index and all),
the same final chains, and (through ``replay_splice``) observer
aggregates whose floats match to the last ulp.

These tests pin that equivalence hypothesis-style: seeded random
circuits compiled to linear/ring/grid machines, then hundreds of
random splices per schedule — identity rewrites, deletions, shuffled
windows, cross-stream garbage, excursion removals — each checked
against the ground truth, with legal splices randomly committed along
the way so the engine is also exercised on edited streams and healed
checkpoints.
"""

from __future__ import annotations

import random

import pytest

from repro.arch import grid_machine, linear_machine, ring_machine
from repro.circuits.circuit import Circuit
from repro.compiler import CompilerConfig, compile_circuit
from repro.core import (
    CheckpointedReplay,
    ClockObserver,
    HeatingObserver,
    MachineState,
    replay,
)
from repro.core.errors import MachineModelError
from repro.sim.params import DEFAULT_PARAMS
from repro.passes.base import extract_excursions, rebuild

MACHINES = {
    "linear": lambda: linear_machine(4, capacity=4, comm_capacity=1),
    "ring": lambda: ring_machine(5, capacity=4, comm_capacity=1),
    "grid": lambda: grid_machine(2, 3, capacity=4, comm_capacity=1),
}


def random_circuit(rng: random.Random, num_qubits: int, num_gates: int):
    circuit = Circuit(num_qubits, name=f"incr-{num_qubits}q")
    for _ in range(num_gates):
        if rng.random() < 0.2:
            circuit.add("x", rng.randrange(num_qubits))
        else:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.add("ms", a, b)
    return circuit


def compiled_stream(rng: random.Random, machine):
    circuit = random_circuit(rng, 10, 60)
    result = compile_circuit(circuit, machine, CompilerConfig.optimized())
    return list(result.schedule.ops), result.initial_chains


def random_splice(rng: random.Random, ops: list):
    """One random (start, end, replacement) edit, legal or not."""
    n = len(ops)
    start = rng.randrange(0, n)
    end = rng.randrange(start, min(n, start + rng.randrange(1, 25)) + 1)
    kind = rng.randrange(5)
    if kind == 0:  # identity rewrite
        replacement = ops[start:end]
    elif kind == 1:  # plain deletion
        replacement = []
    elif kind == 2:  # shuffled window
        replacement = list(ops[start:end])
        rng.shuffle(replacement)
    elif kind == 3:  # cross-stream garbage
        replacement = [
            ops[rng.randrange(n)] for _ in range(rng.randrange(0, 4))
        ]
    else:  # duplicate the window (often overfills/repeats transit)
        replacement = list(ops[start:end]) * 2
    return start, end, replacement


def full_replay_outcome(machine, ops, chains):
    """(legal, final chains | None, error | None) via a fresh replay."""
    try:
        state = replay(machine, ops, chains)
    except MachineModelError as exc:
        return False, None, str(exc)
    return True, state.chains_dict(), None


class TestStateSnapshots:
    """MachineState fork/checkpoint/restore/matches."""

    def setup_method(self):
        self.machine = MACHINES["linear"]()
        self.chains = {0: [0, 1], 1: [2], 2: [3, 4]}

    def test_fork_is_independent(self):
        state = MachineState(self.machine, self.chains)
        twin = state.fork()
        twin.detach_ion(0)
        assert state.trap_of(0) == 0
        assert state.chain(0) == [0, 1]
        assert twin.location(0) == -1

    def test_checkpoint_restores_repeatedly(self):
        state = MachineState(self.machine, self.chains)
        saved = state.checkpoint()
        for _ in range(3):
            state.detach_ion(0)
            state.attach_ion(0, 1)
            assert not state.matches(saved)
            state.restore(saved)
            assert state.matches(saved)
            assert state.chain(0) == [0, 1]

    def test_matches_is_chain_order_sensitive(self):
        state = MachineState(self.machine, self.chains)
        other = MachineState(self.machine, {0: [1, 0], 1: [2], 2: [3, 4]})
        assert not state.matches(other)
        assert state.matches(MachineState(self.machine, self.chains))


class TestObserverSnapshots:
    def test_clock_resume_is_exact(self):
        rng = random.Random(3)
        machine = MACHINES["ring"]()
        ops, chains = compiled_stream(rng, machine)
        mid = len(ops) // 2
        whole = ClockObserver(machine.num_traps).drive(ops)
        split = ClockObserver(machine.num_traps)
        split.drive(ops[:mid])
        snapshot = split.snapshot()
        split.drive(ops[mid:])
        resumed = ClockObserver(machine.num_traps).resume(snapshot)
        resumed.drive(ops[mid:])
        assert [repr(c) for c in resumed.clocks] == [
            repr(c) for c in whole.clocks
        ]
        assert [repr(c) for c in split.clocks] == [
            repr(c) for c in whole.clocks
        ]

    def test_heating_resume_is_exact_after_pollution(self):
        rng = random.Random(4)
        machine = MACHINES["grid"]()
        ops, chains = compiled_stream(rng, machine)
        mid = len(ops) // 3
        heat = HeatingObserver(machine.num_traps, DEFAULT_PARAMS)
        state = MachineState(machine, chains)
        for index, op in enumerate(ops[:mid]):
            state.apply(op)
            heat.observe(index, op, state)
        snapshot = heat.snapshot()
        saved = state.checkpoint()
        # Pollute: observe a different continuation, then resume.
        for index, op in enumerate(ops[mid : mid + 40]):
            state.apply(op)
            heat.observe(index, op, state)
        heat.resume(snapshot)
        state.restore(saved)
        for index, op in enumerate(ops[mid:], mid):
            state.apply(op)
            heat.observe(index, op, state)
        fresh = HeatingObserver(machine.num_traps, DEFAULT_PARAMS)
        replay(machine, ops, chains, (fresh,))
        assert repr(heat.log_fidelity) == repr(fresh.log_fidelity)
        assert repr(heat.max_nbar) == repr(fresh.max_nbar)
        assert repr(heat.mean_gate_nbar) == repr(fresh.mean_gate_nbar)
        assert [repr(f) for f in heat.gate_fidelities] == [
            repr(f) for f in fresh.gate_fidelities
        ]


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_splice_verdicts_match_full_replay(name):
    """Verdict, error message and final chains: engine ≡ fresh replay."""
    rng = random.Random(hash(name) & 0xFFFF)
    machine = MACHINES[name]()
    ops, chains = compiled_stream(rng, machine)
    engine = CheckpointedReplay(machine, ops, chains, interval=8)
    legal = illegal = 0
    for _ in range(300):
        start, end, replacement = random_splice(rng, ops)
        candidate = ops[:start] + list(replacement) + ops[end:]
        verdict = engine.verify_splice(start, end, replacement)
        ok, chains_after, error = full_replay_outcome(
            machine, candidate, chains
        )
        assert verdict.ok == ok, (name, start, end)
        if ok:
            legal += 1
            assert verdict.final_chains == chains_after
        else:
            illegal += 1
            assert verdict.error == error, (name, start, end)
    # The generator must exercise both outcomes to mean anything.
    assert legal > 20 and illegal > 20


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_splice_verdicts_survive_commits(name):
    """Same equivalence on a stream being edited: legal splices are
    randomly committed and later verdicts still match fresh replays of
    the evolving stream (shifted/healed checkpoints included)."""
    rng = random.Random(0xC0 + hash(name) % 97)
    machine = MACHINES[name]()
    ops, chains = compiled_stream(rng, machine)
    engine = CheckpointedReplay(machine, ops, chains, interval=8)
    current = list(ops)
    commits = 0
    for _ in range(250):
        start, end, replacement = random_splice(rng, current)
        candidate = current[:start] + list(replacement) + current[end:]
        verdict = engine.verify_splice(start, end, replacement)
        ok, chains_after, error = full_replay_outcome(
            machine, candidate, chains
        )
        assert verdict.ok == ok
        if ok:
            assert verdict.final_chains == chains_after
            if rng.random() < 0.4:
                engine.commit(verdict)
                current = candidate
                commits += 1
                assert list(engine.ops) == current
                assert engine.final_chains == chains_after
    assert commits > 10


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_excursion_deletions_match_full_replay(name):
    """The pass-shaped edit: deleting whole excursions (round trips),
    the splice the elision pass submits.  Candidates are built with
    :func:`repro.passes.base.rebuild` — the reference implementation
    of the edit semantics the passes used to verify by full replay."""
    rng = random.Random(0xE11 + hash(name) % 31)
    machine = MACHINES[name]()
    ops, chains = compiled_stream(rng, machine)
    engine = CheckpointedReplay(machine, ops, chains)
    trips = extract_excursions(ops)
    assert trips, "compiled stream should contain excursions"
    for trip in trips:
        span = sorted(trip.op_indices())
        start, end = span[0], span[-1] + 1
        candidate = list(rebuild(ops, set(span)).ops)
        replacement = candidate[start : end - len(span)]
        assert candidate == ops[:start] + replacement + ops[end:]
        verdict = engine.verify_splice(start, end, replacement)
        ok, chains_after, error = full_replay_outcome(
            machine, candidate, chains
        )
        assert verdict.ok == ok, (name, trip.ion, start, end)
        if ok:
            assert verdict.final_chains == chains_after
        else:
            assert verdict.error == error


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_observer_floats_bit_identical(name):
    """replay_splice: every observer aggregate — log-fidelity, clocks,
    n̄ extrema, the full per-gate fidelity list — matches a fresh full
    replay of the candidate float for float (compared by repr)."""
    rng = random.Random(0x0B5 + hash(name) % 53)
    machine = MACHINES[name]()
    ops, chains = compiled_stream(rng, machine)
    heat = HeatingObserver(machine.num_traps, DEFAULT_PARAMS)
    clock = ClockObserver(machine.num_traps)
    engine = CheckpointedReplay(
        machine, ops, chains, observers=(heat, clock), interval=9
    )
    current = list(ops)
    checked = 0
    for _ in range(150):
        start, end, replacement = random_splice(rng, current)
        candidate = current[:start] + list(replacement) + current[end:]
        verdict = engine.replay_splice(start, end, replacement)
        ok, chains_after, _ = full_replay_outcome(
            machine, candidate, chains
        )
        assert verdict.ok == ok
        if not ok:
            continue
        fresh_heat = HeatingObserver(machine.num_traps, DEFAULT_PARAMS)
        fresh_clock = ClockObserver(machine.num_traps)
        replay(machine, candidate, chains, (fresh_heat, fresh_clock))
        assert repr(heat.log_fidelity) == repr(fresh_heat.log_fidelity)
        assert repr(heat.max_nbar) == repr(fresh_heat.max_nbar)
        assert repr(heat.min_gate_fidelity) == repr(
            fresh_heat.min_gate_fidelity
        )
        assert repr(heat.mean_gate_nbar) == repr(
            fresh_heat.mean_gate_nbar
        )
        assert [repr(f) for f in heat.gate_fidelities] == [
            repr(f) for f in fresh_heat.gate_fidelities
        ]
        assert [repr(c) for c in clock.clocks] == [
            repr(c) for c in fresh_clock.clocks
        ]
        assert verdict.final_chains == chains_after
        checked += 1
        if rng.random() < 0.25:
            engine.commit(verdict)
            current = candidate
    assert checked > 20


def test_illegal_base_stream_raises_like_replay():
    rng = random.Random(99)
    machine = MACHINES["linear"]()
    ops, chains = compiled_stream(rng, machine)
    corrupted = list(ops)
    del corrupted[next(
        i for i, op in enumerate(corrupted) if hasattr(op, "ion")
    )]
    try:
        replay(machine, corrupted, chains)
        expected = None
    except MachineModelError as exc:
        expected = str(exc)
    assert expected is not None
    with pytest.raises(MachineModelError) as caught:
        CheckpointedReplay(machine, corrupted, chains)
    assert str(caught.value) == expected
