"""Opportunistic gate re-ordering tests (Algorithm 1 / Fig. 6)."""

from repro.arch import heterogeneous_machine, linear_topology
from repro.circuits.circuit import Circuit
from repro.circuits.dag import DependencyDAG
from repro.circuits.gate import Gate
from repro.compiler.config import CompilerConfig
from repro.compiler.compiler import QCCDCompiler
from repro.compiler.policies import FutureOpsPolicy
from repro.compiler.reorder import find_reorder_candidate
from repro.compiler.state import CompilerState


def fig6_machine():
    """Fig. 6's machine: T0 capacity 5 (EC 2 with 3 ions), T1 capacity 4
    (full with 4 ions)."""
    return heterogeneous_machine(
        linear_topology(2), capacities=[5, 4], comm_capacities=[1, 1]
    )


def fig6_chains():
    return {0: [0, 1, 2], 1: [3, 4, 5, 6]}


def fig6_circuit() -> Circuit:
    """The partial program of Fig. 6b."""
    return Circuit(
        7,
        [
            Gate("ms", (2, 3)),  # gA
            Gate("ms", (4, 0)),  # gB
            Gate("ms", (2, 5)),  # gC
            Gate("ms", (6, 2)),  # gD
            Gate("ms", (1, 4)),  # gE
        ],
        name="fig6",
    )


class TestFindCandidate:
    def test_fig6_candidate_is_gate_b(self):
        """gA's favourable destination T1 is full; gB frees it."""
        circuit = fig6_circuit()
        dag = DependencyDAG(circuit)
        state = CompilerState(fig6_machine(), fig6_chains())
        policy = FutureOpsPolicy(
            proximity=6, proximity_metric="gates", capacity_guard=0
        )
        pending = dag.topological_order()

        def decide(gate, upcoming, layer):
            return policy.decide(gate, state, upcoming, layer)

        position = find_reorder_candidate(
            pending,
            active_pos=0,
            executed=set(),
            dag=dag,
            state=state,
            decide=decide,
            old_destination=1,
        )
        assert position is not None
        assert dag.gate(pending[position]) == Gate("ms", (4, 0))  # gB

    def test_no_candidate_when_nothing_leaves_the_trap(self):
        circuit = Circuit(4, [Gate("ms", (0, 2)), Gate("ms", (1, 3))])
        dag = DependencyDAG(circuit)
        machine = heterogeneous_machine(
            linear_topology(2), capacities=[4, 4], comm_capacities=[1, 1]
        )
        state = CompilerState(machine, {0: [0, 1], 1: [2, 3]})
        policy = FutureOpsPolicy(proximity=6, capacity_guard=0)
        pending = dag.topological_order()

        def decide(gate, upcoming, layer):
            return policy.decide(gate, state, upcoming, layer)

        # Gate (1,3): both directions exist but neither candidate's
        # source is trap 0 when we ask about old_destination=0 with the
        # other gate having no reason to leave.
        position = find_reorder_candidate(
            pending, 0, set(), dag, state, decide, old_destination=99
        )
        assert position is None

    def test_dependency_unsafe_candidates_skipped(self):
        # Second gate depends on the first: it can never be hoisted.
        circuit = Circuit(
            4, [Gate("ms", (0, 2)), Gate("ms", (0, 3))]
        )
        dag = DependencyDAG(circuit)
        machine = fig6_machine()
        state = CompilerState(machine, {0: [0, 1], 1: [2, 3]})
        policy = FutureOpsPolicy(proximity=6, capacity_guard=0)
        pending = dag.topological_order()

        def decide(gate, upcoming, layer):
            return policy.decide(gate, state, upcoming, layer)

        assert (
            find_reorder_candidate(
                pending, 0, set(), dag, state, decide, old_destination=1
            )
            is None
        )


class TestFig6EndToEnd:
    """The paper's full Fig. 6 comparison: 5 shuttles without
    re-ordering vs 2 with it."""

    def optimized_config(self, reorder: bool) -> CompilerConfig:
        return CompilerConfig.optimized().variant(
            reorder=reorder,
            capacity_guard=0,
            proximity_metric="gates",
        )

    def compile_fig6(self, reorder: bool):
        compiler = QCCDCompiler(fig6_machine(), self.optimized_config(reorder))
        return compiler.compile(fig6_circuit(), initial_chains=fig6_chains())

    def test_with_reordering_two_shuttles(self):
        result = self.compile_fig6(reorder=True)
        assert result.num_shuttles == 2
        assert result.num_reorders >= 1

    def test_without_reordering_more_shuttles(self):
        with_reorder = self.compile_fig6(reorder=True)
        without = self.compile_fig6(reorder=False)
        assert without.num_shuttles > with_reorder.num_shuttles

    def test_reordered_execution_respects_dependencies(self):
        result = self.compile_fig6(reorder=True)
        dag = DependencyDAG(fig6_circuit())
        assert dag.is_valid_order(result.gate_order)
