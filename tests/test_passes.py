"""Unit and integration tests for the post-compilation pass subsystem."""

import pytest

from repro.arch import (
    l6_machine,
    linear_topology,
    ring_topology,
    uniform_machine,
)
from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.compiler import CompilerConfig, compile_circuit
from repro.eval.exact import optimal_shuttle_count
from repro.passes import (
    DEFAULT_PIPELINE,
    GateHoisting,
    MergeSplitFusion,
    OptimizationResult,
    PassContext,
    PassError,
    PassManager,
    RouteReselection,
    RoundTripElision,
    SchedulePass,
    VerificationError,
    available_passes,
    estimate_makespan,
    gate_multiset,
    is_legal,
    make_passes,
    optimize_schedule,
    resolve_pass_names,
    verify_equivalent,
    verify_schedule,
)
from repro.sim.ops import GateOp, MergeOp, MoveOp, SplitOp, SwapOp
from repro.sim.schedule import Schedule
from repro.sim.simulator import Simulator


def small_machine(traps=3, capacity=4, comm=1):
    return uniform_machine(linear_topology(traps), capacity, comm)


def sched(*ops) -> Schedule:
    return Schedule(ops)


def trip(ion, path, gate_after=None):
    """Ops for one excursion along ``path`` (list of traps)."""
    ops = [SplitOp(ion=ion, trap=path[0])]
    ops += [
        MoveOp(ion=ion, src=a, dst=b) for a, b in zip(path, path[1:])
    ]
    ops.append(MergeOp(ion=ion, trap=path[-1]))
    if gate_after is not None:
        ops.append(gate_after)
    return ops


class TestVerifySchedule:
    def test_accepts_compiler_output(self):
        circuit = Circuit(6, name="v")
        for a, b in [(0, 5), (1, 4), (2, 3), (0, 3)]:
            circuit.add("ms", a, b)
        machine = small_machine()
        result = compile_circuit(circuit, machine)
        final = verify_schedule(
            machine, result.schedule, result.initial_chains
        )
        assert final == result.final_chains

    def test_rejects_gate_on_absent_ion(self):
        machine = small_machine()
        schedule = sched(GateOp(gate=Gate("ms", (0, 1)), trap=1))
        with pytest.raises(VerificationError, match="is not there"):
            verify_schedule(machine, schedule, {0: [0, 1]})

    def test_rejects_move_without_split(self):
        machine = small_machine()
        schedule = sched(MoveOp(ion=0, src=0, dst=1))
        with pytest.raises(VerificationError, match="without a split"):
            verify_schedule(machine, schedule, {0: [0]})

    def test_rejects_move_without_edge(self):
        machine = small_machine()
        schedule = sched(
            SplitOp(ion=0, trap=0), MoveOp(ion=0, src=0, dst=2)
        )
        with pytest.raises(VerificationError, match="no shuttle path"):
            verify_schedule(machine, schedule, {0: [0]})

    def test_rejects_move_into_full_trap(self):
        machine = small_machine(capacity=2)
        schedule = sched(
            SplitOp(ion=0, trap=0),
            MoveOp(ion=0, src=0, dst=1),
        )
        with pytest.raises(VerificationError, match="full trap"):
            verify_schedule(machine, schedule, {0: [0], 1: [1, 2]})

    def test_rejects_merge_at_wrong_trap(self):
        machine = small_machine()
        schedule = sched(
            SplitOp(ion=0, trap=0),
            MoveOp(ion=0, src=0, dst=1),
            MergeOp(ion=0, trap=2),
        )
        with pytest.raises(VerificationError, match="it is at trap"):
            verify_schedule(machine, schedule, {0: [0]})

    def test_rejects_stranded_transit(self):
        machine = small_machine()
        schedule = sched(SplitOp(ion=0, trap=0))
        with pytest.raises(VerificationError, match="in transit"):
            verify_schedule(machine, schedule, {0: [0]})

    def test_rejects_non_adjacent_swap(self):
        machine = small_machine()
        schedule = sched(SwapOp(ion_a=0, ion_b=2, trap=0))
        with pytest.raises(VerificationError, match="not adjacent"):
            verify_schedule(machine, schedule, {0: [0, 1, 2]})

    def test_rejects_overfull_initial_chain(self):
        machine = small_machine(capacity=2)
        with pytest.raises(VerificationError, match="capacity"):
            verify_schedule(machine, sched(), {0: [0, 1, 2]})

    def test_returns_final_chains(self):
        machine = small_machine()
        schedule = sched(*trip(0, [0, 1]))
        final = verify_schedule(machine, schedule, {0: [0], 1: [1]})
        assert final[0] == []
        assert final[1] == [1, 0]


class TestVerifyEquivalent:
    def test_accepts_identical(self):
        a = sched(GateOp(gate=Gate("ms", (0, 1)), trap=0))
        verify_equivalent(a, a)

    def test_accepts_independent_reorder(self):
        g1 = GateOp(gate=Gate("ms", (0, 1)), trap=0)
        g2 = GateOp(gate=Gate("ms", (2, 3)), trap=1)
        verify_equivalent(sched(g1, g2), sched(g2, g1))

    def test_rejects_dropped_gate(self):
        g1 = GateOp(gate=Gate("ms", (0, 1)), trap=0)
        with pytest.raises(VerificationError, match="multiset"):
            verify_equivalent(sched(g1), sched())

    def test_rejects_dependent_reorder(self):
        g1 = GateOp(gate=Gate("h", (0,)), trap=0)
        g2 = GateOp(gate=Gate("x", (0,)), trap=0)
        with pytest.raises(VerificationError, match="reordered"):
            verify_equivalent(sched(g1, g2), sched(g2, g1))


class TestRoundTripElision:
    def ctx(self, machine=None, chains=None):
        machine = machine or small_machine()
        return PassContext(
            machine=machine, initial_chains=chains or {0: [0], 1: [1]}
        )

    def test_elides_simple_round_trip(self):
        schedule = sched(*trip(0, [0, 1]), *trip(0, [1, 0]))
        out, rewrites = RoundTripElision().run(schedule, self.ctx())
        assert rewrites == 1
        assert len(out) == 0

    def test_keeps_trip_that_served_a_gate(self):
        gate = GateOp(gate=Gate("ms", (0, 1)), trap=1)
        schedule = sched(
            *trip(0, [0, 1], gate_after=gate), *trip(0, [1, 0])
        )
        out, rewrites = RoundTripElision().run(schedule, self.ctx())
        assert rewrites == 0
        assert out == schedule

    def test_keeps_trip_other_traffic_depends_on(self):
        # Trap 0 (capacity 2) starts full; ion 0 vacates so ion 2 can
        # merge in for a gate and leave again, then ion 0 returns.
        # Eliding ion 0's round trip would overfill trap 0 the moment
        # ion 2 arrives, so the verifier rejects the deletion — and the
        # gate on ion 2 blocks eliding *its* round trip.
        machine = small_machine(capacity=2)
        chains = {0: [0, 1], 1: [], 2: [2]}
        gate = GateOp(gate=Gate("ms", (1, 2)), trap=0)
        schedule = sched(
            *trip(0, [0, 1]),
            *trip(2, [2, 1, 0], gate_after=gate),
            *trip(2, [0, 1, 2]),
            *trip(0, [1, 0]),
        )
        verify_schedule(machine, schedule, chains)
        out, rewrites = RoundTripElision().run(
            schedule, PassContext(machine=machine, initial_chains=chains)
        )
        assert rewrites == 0
        assert out == schedule

    def test_elides_multi_excursion_chain(self):
        # 0 -> 1 -> 2 -> 0 across three excursions, no gates anywhere.
        schedule = sched(
            *trip(0, [0, 1]), *trip(0, [1, 2]), *trip(0, [2, 1, 0])
        )
        ctx = self.ctx(chains={0: [0]})
        out, rewrites = RoundTripElision().run(schedule, ctx)
        assert rewrites == 1
        assert len(out) == 0


class TestMergeSplitFusion:
    def ctx(self, machine=None, chains=None):
        machine = machine or small_machine()
        return PassContext(
            machine=machine, initial_chains=chains or {0: [0]}
        )

    def test_plain_fusion_drops_merge_and_split(self):
        gate = GateOp(gate=Gate("h", (0,)), trap=2)
        schedule = sched(
            *trip(0, [0, 1]), *trip(0, [1, 2], gate_after=gate)
        )
        out, rewrites = MergeSplitFusion().run(schedule, self.ctx())
        assert rewrites == 1
        assert out.num_splits == 1
        assert out.num_merges == 1
        assert out.num_shuttles == 2  # straight-line: no moves saved
        assert gate in out.ops

    def test_shortened_fusion_saves_shuttles(self):
        # Evicted two traps right, then needed one trap left of the
        # park: 0->2 then 2->1 walks 3 hops where 1 suffices.
        gate = GateOp(gate=Gate("h", (0,)), trap=1)
        schedule = sched(
            *trip(0, [0, 1, 2]), *trip(0, [2, 1], gate_after=gate)
        )
        out, rewrites = MergeSplitFusion().run(schedule, self.ctx())
        assert rewrites == 1
        assert out.num_shuttles == 1
        assert out.num_splits == 1 and out.num_merges == 1
        assert is_legal(small_machine(), out, {0: [0]})

    def test_gate_at_park_blocks_fusion(self):
        gate = GateOp(gate=Gate("h", (0,)), trap=1)
        schedule = sched(
            *trip(0, [0, 1], gate_after=gate), *trip(0, [1, 2])
        )
        out, rewrites = MergeSplitFusion().run(schedule, self.ctx())
        assert rewrites == 0
        assert out == schedule


class TestRouteReselection:
    def test_reroutes_around_congestion(self):
        # Ring of 4: 0 -> 2 goes via 1 or via 3; trap 1 is crowded,
        # trap 3 empty, so the pass flips the route to 0 -> 3 -> 2.
        machine = uniform_machine(ring_topology(4), 4, 1)
        chains = {0: [0], 1: [1, 2, 3], 3: []}
        schedule = sched(
            SplitOp(ion=0, trap=0),
            MoveOp(ion=0, src=0, dst=1),
            MoveOp(ion=0, src=1, dst=2),
            MergeOp(ion=0, trap=2),
        )
        verify_schedule(machine, schedule, chains)
        out, rewrites = RouteReselection().run(
            schedule, PassContext(machine=machine, initial_chains=chains)
        )
        assert rewrites == 1
        moves = [op for op in out if isinstance(op, MoveOp)]
        assert [(m.src, m.dst) for m in moves] == [(0, 3), (3, 2)]
        assert is_legal(machine, out, chains)

    def test_noop_on_linear_machine(self):
        machine = small_machine(traps=4)
        chains = {0: [0], 1: [1, 2, 3]}
        schedule = sched(*trip(0, [0, 1, 2, 3]))
        out, rewrites = RouteReselection().run(
            schedule, PassContext(machine=machine, initial_chains=chains)
        )
        assert rewrites == 0
        assert out == schedule


class TestGateHoisting:
    def test_hoists_gate_ahead_of_barrier(self):
        # Ion 2 shuttles from busy trap 2 through trap 1 to trap 0; the
        # move into trap 1 synchronizes trap 1 with trap 2's long gate,
        # stalling the trap-1 gates that could have run during the wait.
        machine = small_machine(traps=3, capacity=4)
        chains = {0: [4], 1: [0, 1], 2: [2, 3]}
        busy = GateOp(gate=Gate("ms", (2, 3)), trap=2)
        idle = GateOp(gate=Gate("h", (0,)), trap=1)
        final = GateOp(gate=Gate("ms", (0, 1)), trap=1)
        schedule = sched(
            busy,
            SplitOp(ion=2, trap=2),
            MoveOp(ion=2, src=2, dst=1),
            MoveOp(ion=2, src=1, dst=0),
            MergeOp(ion=2, trap=0),
            idle,
            final,
        )
        ctx = PassContext(machine=machine, initial_chains=chains)
        verify_schedule(machine, schedule, chains)
        out, rewrites = GateHoisting().run(schedule, ctx)
        assert rewrites == 2
        assert out.ops[0] == idle
        assert out.ops[1] == final
        assert estimate_makespan(machine, out) < estimate_makespan(
            machine, schedule
        )
        verify_equivalent(schedule, out)
        verify_schedule(machine, out, chains)

    def test_never_crosses_dependent_gate(self):
        machine = small_machine(traps=2)
        chains = {0: [0], 1: [1]}
        g1 = GateOp(gate=Gate("h", (0,)), trap=0)
        g2 = GateOp(gate=Gate("x", (0,)), trap=0)
        schedule = sched(g1, g2)
        out, rewrites = GateHoisting().run(
            schedule, PassContext(machine=machine, initial_chains=chains)
        )
        assert rewrites == 0
        assert out == schedule

    def test_fidelity_unchanged_by_hoisting(self):
        circuit = Circuit(8, name="hoist")
        for a, b in [(0, 7), (1, 6), (2, 5), (3, 4), (0, 4), (2, 7)]:
            circuit.add("ms", a, b)
        machine = small_machine(traps=4, capacity=3)
        result = compile_circuit(circuit, machine)
        ctx = PassContext(
            machine=machine, initial_chains=result.initial_chains
        )
        out, rewrites = GateHoisting().run(result.schedule, ctx)
        simulator = Simulator(machine)
        before = simulator.run(result.schedule, result.initial_chains)
        after = simulator.run(out, result.initial_chains)
        assert after.program_log_fidelity == pytest.approx(
            before.program_log_fidelity, abs=1e-12
        )
        assert after.duration <= before.duration + 1e-12


class _BrokenPass(SchedulePass):
    name = "broken"
    description = "drops the last op (test only)"

    def run(self, schedule, ctx):
        return Schedule(schedule.ops[:-1]), 1


class _HeatingPass(SchedulePass):
    """Legal, equivalent, shuttle-neutral — but heats a chain before
    its gates run, so program fidelity strictly drops."""

    name = "heater"
    description = "prepends a pointless in-chain swap (test only)"

    def run(self, schedule, ctx):
        swap = SwapOp(ion_a=0, ion_b=1, trap=0)
        return Schedule([swap] + list(schedule.ops)), 1


class TestPassManager:
    def compiled(self):
        circuit = Circuit(6, name="pm")
        for a, b in [(0, 5), (1, 4), (2, 3), (0, 3), (1, 5)]:
            circuit.add("ms", a, b)
        machine = small_machine()
        result = compile_circuit(circuit, machine)
        return machine, result

    def test_refuses_illegal_input(self):
        machine = small_machine()
        schedule = sched(SplitOp(ion=9, trap=0))
        with pytest.raises(VerificationError):
            PassManager().run(schedule, machine, {0: [0]})

    def test_refuses_broken_pass_output(self):
        machine, result = self.compiled()
        manager = PassManager([_BrokenPass()], fidelity_guard=False)
        with pytest.raises(PassError, match="broken"):
            manager.run(
                result.schedule, machine, result.initial_chains
            )

    def test_fidelity_guard_reverts_heating_pass(self):
        machine = small_machine(traps=2, capacity=3)
        chains = {0: [0, 1], 1: [2]}
        schedule = sched(GateOp(gate=Gate("ms", (0, 1)), trap=0))

        guarded = PassManager(
            [_HeatingPass()], fidelity_guard=True
        ).run(schedule, machine, chains)
        assert guarded.passes[0].reverted
        assert guarded.schedule == schedule

        unguarded = PassManager(
            [_HeatingPass()], fidelity_guard=False
        ).run(schedule, machine, chains)
        assert not unguarded.passes[0].reverted
        assert len(unguarded.schedule) == len(schedule) + 1

    def test_records_per_pass_stats(self):
        machine, result = self.compiled()
        optimization = PassManager().run(
            result.schedule, machine, result.initial_chains
        )
        assert isinstance(optimization, OptimizationResult)
        assert [s.name for s in optimization.passes] == list(
            DEFAULT_PIPELINE
        )
        assert optimization.num_shuttles <= optimization.raw_num_shuttles
        assert "shuttles" in optimization.summary()

    def test_optimize_schedule_wrapper(self):
        machine, result = self.compiled()
        optimization = optimize_schedule(
            result.schedule, machine, result.initial_chains
        )
        verify_schedule(
            machine, optimization.schedule, result.initial_chains
        )
        verify_equivalent(result.schedule, optimization.schedule)


class TestRegistry:
    def test_available_passes_lists_all(self):
        names = [name for name, _ in available_passes()]
        assert names == list(DEFAULT_PIPELINE)
        assert all(doc for _, doc in available_passes())

    def test_resolve_default_and_all(self):
        assert resolve_pass_names(None) == DEFAULT_PIPELINE
        assert resolve_pass_names(("default",)) == DEFAULT_PIPELINE
        assert resolve_pass_names(("all",)) == DEFAULT_PIPELINE

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown pass"):
            resolve_pass_names(("optimize-harder",))

    def test_resolve_deduplicates(self):
        assert resolve_pass_names(
            ("reroute", "default", "reroute")
        ) == ("reroute",) + tuple(
            n for n in DEFAULT_PIPELINE if n != "reroute"
        )

    def test_make_passes_accepts_mixed_forms(self):
        pipeline = make_passes(
            ["reroute", GateHoisting, RoundTripElision()]
        )
        assert [p.name for p in pipeline] == [
            "reroute", "tighten-gates", "elide-roundtrips",
        ]
        with pytest.raises(TypeError):
            make_passes([42])


class TestCompilerIntegration:
    def circuit(self):
        circuit = Circuit(8, name="integ")
        for a, b in [(0, 7), (1, 6), (2, 5), (3, 4), (0, 4), (2, 6)]:
            circuit.add("ms", a, b)
        return circuit

    def test_post_passes_config_validation(self):
        with pytest.raises(ValueError, match="unknown pass"):
            CompilerConfig(post_passes=("bogus",))
        config = CompilerConfig(post_passes=("default",))
        assert config.post_passes == DEFAULT_PIPELINE

    def test_post_passes_changes_fingerprint(self):
        from repro.batch.jobs import CompileJob

        machine = small_machine()
        plain = CompileJob(
            self.circuit(), machine, CompilerConfig.optimized()
        )
        passed = CompileJob(
            self.circuit(),
            machine,
            CompilerConfig.optimized().variant(
                post_passes=("default",)
            ),
        )
        assert plain.fingerprint() != passed.fingerprint()

    def test_compile_with_post_passes(self):
        machine = small_machine(traps=4, capacity=3)
        config = CompilerConfig.optimized().variant(
            post_passes=("default",)
        )
        result = compile_circuit(self.circuit(), machine, config)
        assert result.optimized
        assert result.raw_num_shuttles is not None
        assert result.num_shuttles <= result.raw_num_shuttles
        assert result.raw_num_ops is not None
        assert len(result.pass_stats) == len(DEFAULT_PIPELINE)
        assert "passes:" in result.summary()
        # The recorded schedule and final chains match a real replay.
        final = verify_schedule(
            machine, result.schedule, result.initial_chains
        )
        assert final == result.final_chains
        # And the simulator accepts the optimized stream.
        Simulator(machine).run(result.schedule, result.initial_chains)

    def test_gate_order_tracks_pass_reordering(self):
        # tighten-gates may hoist gates; gate_order must keep mapping
        # the shipped schedule's gates back to circuit positions.
        circuit = self.circuit()
        machine = small_machine(traps=4, capacity=3)
        config = CompilerConfig.optimized().variant(
            post_passes=("default",)
        )
        result = compile_circuit(circuit, machine, config)
        assert sorted(result.gate_order) == list(range(len(circuit)))
        scheduled = [op.gate for op in result.schedule.gate_ops()]
        assert scheduled == [
            circuit.gates[index] for index in result.gate_order
        ]

    def test_without_passes_fields_are_none(self):
        result = compile_circuit(self.circuit(), small_machine(4, 3))
        assert not result.optimized
        assert result.raw_num_shuttles is None
        assert result.pass_stats == ()
        assert result.shuttles_removed_by_passes == 0

    def test_records_carry_pass_columns(self):
        from repro.batch.jobs import CompileJob
        from repro.batch.records import build_record
        from repro.batch.runner import execute_job, JobResult

        machine = small_machine(traps=4, capacity=3)
        job = CompileJob(
            self.circuit(),
            machine,
            CompilerConfig.optimized().variant(
                post_passes=("default",)
            ),
        )
        result, report = execute_job(job)
        record = build_record(
            job, JobResult(0, job.fingerprint(), result, report)
        )
        assert record.raw_num_shuttles == result.raw_num_shuttles
        assert record.shuttles_removed == (
            result.raw_num_shuttles - result.num_shuttles
        )
        assert record.pass_rewrites == result.pass_rewrites


class TestExactEquivalence:
    """Optimized schedules stay within the exact solver's bounds on the
    small-circuit set (eval/exact machinery, Section IV-E1)."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_optimized_never_beats_exact_optimum(self, seed):
        import random

        rng = random.Random(seed)
        circuit = Circuit(6, name=f"exact-{seed}")
        for _ in range(8):
            a, b = rng.sample(range(6), 2)
            circuit.add("ms", a, b)
        machine = small_machine(traps=3, capacity=4, comm=1)
        result = compile_circuit(circuit, machine)
        optimization = PassManager().run(
            result.schedule, machine, result.initial_chains
        )
        optimum = optimal_shuttle_count(
            circuit, machine, result.initial_chains
        )
        assert optimization.num_shuttles >= optimum
        # Equivalence: the optimized stream executes the same circuit.
        verify_equivalent(result.schedule, optimization.schedule)
        assert gate_multiset(optimization.schedule) == gate_multiset(
            result.schedule
        )
        report = Simulator(machine).run(
            optimization.schedule, result.initial_chains
        )
        assert report.num_gates == len(circuit.gates)
