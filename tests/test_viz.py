"""Visualisation helper tests."""

from repro.arch import grid_machine, l6_machine, linear_machine
from repro.circuits.gate import Gate
from repro.sim.ops import GateOp, MergeOp, MoveOp, SplitOp
from repro.sim.schedule import Schedule
from repro.viz import (
    gate_trap_histogram,
    render_chains,
    render_occupancy_bar,
    render_topology,
    schedule_summary,
    shuttle_trace,
)


def sample_schedule() -> Schedule:
    return Schedule(
        [
            GateOp(gate=Gate("ms", (0, 1)), trap=0),
            SplitOp(ion=2, trap=1),
            MoveOp(ion=2, src=1, dst=0),
            MergeOp(ion=2, trap=0),
            GateOp(gate=Gate("ms", (0, 2)), trap=0),
        ]
    )


class TestTrapView:
    def test_render_chains(self):
        machine = linear_machine(2, capacity=4, comm_capacity=1)
        text = render_chains(machine, {0: [0, 1], 1: [2]}, label="state:")
        assert "state:" in text
        assert "T0 (EC=2): [0 1]" in text
        assert "T1 (EC=3): [2]" in text

    def test_render_topology_linear(self):
        assert render_topology(l6_machine()) == (
            "T0 -- T1 -- T2 -- T3 -- T4 -- T5"
        )

    def test_render_topology_grid(self):
        text = render_topology(grid_machine(2, 2))
        assert "T0 -- T1" in text

    def test_render_occupancy_bar(self):
        machine = linear_machine(2, capacity=4, comm_capacity=1)
        text = render_occupancy_bar(machine, {0: [0, 1], 1: []})
        assert "T0 |##..| 2/4" in text
        assert "T1 |....| 0/4" in text


class TestTimeline:
    def test_shuttle_trace(self):
        text = shuttle_trace(sample_schedule())
        assert "split ion 2 from T1" in text
        assert "move  ion 2: T1 -> T0" in text
        assert "merge ion 2 into T0" in text

    def test_shuttle_trace_limit(self):
        text = shuttle_trace(sample_schedule(), limit=1)
        assert text.endswith("...")

    def test_shuttle_trace_empty(self):
        assert shuttle_trace(Schedule()) == "(no shuttles)"

    def test_schedule_summary(self):
        text = schedule_summary(sample_schedule())
        assert "gates=2" in text
        assert "moves=1" in text

    def test_gate_trap_histogram(self):
        histogram = gate_trap_histogram(sample_schedule())
        assert histogram == {0: 2}
