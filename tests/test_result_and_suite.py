"""CompilationResult accounting and suite-module behaviour."""

import pytest

from repro.arch import linear_topology, uniform_machine
from repro.bench.suite import (
    PAPER_FIG8_IMPROVEMENT,
    PAPER_NISQ_SIZES,
    PAPER_TABLE2_SHUTTLES,
    PAPER_TABLE3_SECONDS,
    full_random_requested,
    paper_suite,
)
from repro.circuits.circuit import Circuit
from repro.compiler import CompilerConfig, compile_circuit
from repro.sim.ops import ShuttleReason


def machine():
    return uniform_machine(linear_topology(3), 4, 1)


class TestCompilationResult:
    def result(self):
        circuit = Circuit(6, name="acct")
        circuit.add("ms", 0, 3).add("ms", 1, 4).add("ms", 2, 5)
        return compile_circuit(
            circuit,
            machine(),
            CompilerConfig.optimized(),
            initial_chains={0: [0, 1, 2], 1: [3, 4, 5]},
        )

    def test_counters_consistent(self):
        result = self.result()
        assert result.num_gates == 3
        assert result.num_two_qubit_gates == 3
        assert result.num_shuttles == (
            result.gate_routing_shuttles + result.rebalance_shuttles
        )

    def test_reason_split(self):
        result = self.result()
        by_reason = result.shuttles_by_reason()
        assert sum(by_reason.values()) == result.num_shuttles
        assert set(by_reason) <= {
            ShuttleReason.GATE,
            ShuttleReason.REBALANCE,
        }

    def test_summary_mentions_names(self):
        text = self.result().summary()
        assert "acct" in text
        assert "shuttles" in text

    def test_chains_are_copies(self):
        result = self.result()
        result.initial_chains[0].append(99)
        fresh = self.result()
        assert 99 not in fresh.initial_chains[0]


class TestPaperConstants:
    def test_all_tables_cover_same_benchmarks(self):
        names = set(PAPER_NISQ_SIZES)
        assert set(PAPER_TABLE2_SHUTTLES) == names | {"Random"}
        assert set(PAPER_FIG8_IMPROVEMENT) == names | {"Random"}
        assert set(PAPER_TABLE3_SECONDS) == names | {"Random"}

    def test_paper_reductions_match_percentages(self):
        # Table II's %Delta column re-derives from its own counts.
        expected = {
            "Supremacy": 38.90,
            "QAOA": 38.34,
            "SquareRoot": 50.49,  # paper prints 51.17 from unrounded data
            "QFT": 18.67,
            "QuadraticForm": 28.07,
        }
        for name, (base, opt) in PAPER_TABLE2_SHUTTLES.items():
            if name == "Random":
                continue
            measured = 100.0 * (base - opt) / base
            assert measured == pytest.approx(expected[name], abs=0.8)


class TestSuiteAssembly:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_random_requested()
        monkeypatch.setenv("REPRO_FULL", "0")
        assert not full_random_requested()
        monkeypatch.delenv("REPRO_FULL")
        assert not full_random_requested()

    def test_paper_suite_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "0")
        assert len(paper_suite()) == 17

    def test_nisq_circuits_lead_the_suite(self):
        suite = paper_suite(full=False)
        assert [c.name for c in suite[:5]] == list(PAPER_NISQ_SIZES)
