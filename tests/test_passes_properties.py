"""Property tests: every pass preserves legality and the gate multiset
on randomized circuits across linear/ring/grid machines.

A deterministic seed loop (hypothesis-style, but reproducible without
shrinking) drives random circuits through the compiler, then through
each pass individually and through the full default pipeline, checking
the invariants the pass manager stakes its correctness on:

* the rewritten schedule replays legally against the machine model,
* the gate multiset and per-qubit gate order are unchanged,
* shuttle counts never increase (and split/merge counts never increase
  for the deleting passes),
* the rewritten schedule still simulates (and, for the full pipeline
  with the fidelity guard, simulates no worse).
"""

import random

import pytest

from repro.arch import (
    grid_topology,
    linear_topology,
    ring_topology,
    uniform_machine,
)
from repro.circuits.circuit import Circuit
from repro.compiler import compile_circuit
from repro.passes import (
    PassContext,
    PassManager,
    make_passes,
    verify_equivalent,
    verify_schedule,
)
from repro.sim.simulator import Simulator

MACHINES = [
    uniform_machine(linear_topology(3), 4, 1),
    uniform_machine(linear_topology(4), 3, 1),
    uniform_machine(ring_topology(4), 3, 1),
    uniform_machine(grid_topology(2, 3), 3, 1),
]

SEEDS = range(6)


def random_case(machine, seed):
    """A random circuit sized to the machine, compiled onto it."""
    rng = random.Random(seed * 1000 + machine.num_traps)
    num_qubits = min(machine.load_capacity, 8 + rng.randrange(4))
    circuit = Circuit(num_qubits, name=f"prop-{seed}")
    for _ in range(25 + rng.randrange(15)):
        if rng.random() < 0.2:
            circuit.add("h", rng.randrange(num_qubits))
        else:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.add("ms", a, b)
    return compile_circuit(circuit, machine)


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("seed", SEEDS)
def test_each_pass_preserves_invariants(machine, seed):
    result = random_case(machine, seed)
    ctx = PassContext(
        machine=machine, initial_chains=result.initial_chains
    )
    for schedule_pass in make_passes(None):
        out, rewrites = schedule_pass.run(result.schedule, ctx)
        verify_schedule(machine, out, result.initial_chains)
        verify_equivalent(result.schedule, out)
        assert out.num_shuttles <= result.schedule.num_shuttles, (
            schedule_pass.name
        )
        assert out.num_splits <= result.schedule.num_splits
        assert out.num_merges <= result.schedule.num_merges
        if rewrites == 0 and schedule_pass.name != "tighten-gates":
            assert out == result.schedule


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("seed", SEEDS)
def test_full_pipeline_never_regresses(machine, seed):
    result = random_case(machine, seed)
    optimization = PassManager().run(
        result.schedule, machine, result.initial_chains
    )
    verify_schedule(
        machine, optimization.schedule, result.initial_chains
    )
    verify_equivalent(result.schedule, optimization.schedule)
    assert optimization.num_shuttles <= optimization.raw_num_shuttles

    simulator = Simulator(machine)
    before = simulator.run(result.schedule, result.initial_chains)
    after = simulator.run(
        optimization.schedule, result.initial_chains
    )
    assert (
        after.program_log_fidelity
        >= before.program_log_fidelity - 1e-9
    )
    assert after.num_gates == before.num_gates
