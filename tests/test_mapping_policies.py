"""Alternative initial-mapping policies (Section IV-E3 extension)."""

import pytest

from repro.arch import l6_machine, linear_topology, uniform_machine
from repro.bench import qft_circuit
from repro.circuits.circuit import Circuit
from repro.compiler import CompilerConfig, compile_circuit
from repro.compiler.mapping import (
    MAPPING_POLICIES,
    initial_mapping,
    random_initial_mapping,
    round_robin_initial_mapping,
)
from repro.compiler.state import CompilationError


def machine():
    return uniform_machine(linear_topology(3), 5, 1)


class TestRoundRobin:
    def test_stripes_across_traps(self):
        chains = round_robin_initial_mapping(Circuit(6), machine())
        assert chains[0] == [0, 3]
        assert chains[1] == [1, 4]
        assert chains[2] == [2, 5]

    def test_respects_load_capacity(self):
        m = machine()
        chains = round_robin_initial_mapping(Circuit(12), m)
        for trap_id, chain in chains.items():
            assert len(chain) <= m.trap(trap_id).load_capacity

    def test_rejects_oversize(self):
        with pytest.raises(Exception):
            round_robin_initial_mapping(Circuit(100), machine())


class TestRandomMapping:
    def test_deterministic_per_seed(self):
        a = random_initial_mapping(Circuit(10), machine(), seed=4)
        b = random_initial_mapping(Circuit(10), machine(), seed=4)
        assert a == b

    def test_seeds_differ(self):
        a = random_initial_mapping(Circuit(10), machine(), seed=1)
        b = random_initial_mapping(Circuit(10), machine(), seed=2)
        assert a != b

    def test_all_qubits_placed(self):
        chains = random_initial_mapping(Circuit(10), machine(), seed=7)
        placed = sorted(q for c in chains.values() for q in c)
        assert placed == list(range(10))


class TestDispatch:
    def test_known_policies(self):
        assert set(MAPPING_POLICIES) == {"greedy", "round-robin", "random"}
        for policy in MAPPING_POLICIES:
            chains = initial_mapping(Circuit(6), machine(), policy=policy)
            assert sum(len(c) for c in chains.values()) == 6

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            initial_mapping(Circuit(4), machine(), policy="psychic")


class TestMappingStudy:
    """The paper's Section IV-E3: the greedy mapping is the sensible
    default; interaction-blind mappings cost more shuttles, and the
    optimized compiler keeps its edge regardless of the mapping."""

    def test_greedy_beats_round_robin_on_structured_circuits(self):
        circuit = qft_circuit(num_qubits=32)
        m = l6_machine()
        greedy_chains = initial_mapping(circuit, m, policy="greedy")
        rr_chains = initial_mapping(circuit, m, policy="round-robin")
        config = CompilerConfig.optimized()
        greedy = compile_circuit(circuit, m, config, initial_chains=greedy_chains)
        rr = compile_circuit(circuit, m, config, initial_chains=rr_chains)
        assert greedy.num_shuttles < rr.num_shuttles

    def test_gains_survive_bad_mappings(self):
        circuit = qft_circuit(num_qubits=32)
        m = l6_machine()
        chains = initial_mapping(circuit, m, policy="random", seed=11)
        base = compile_circuit(
            circuit, m, CompilerConfig.baseline(), initial_chains=chains
        )
        opt = compile_circuit(
            circuit, m, CompilerConfig.optimized(), initial_chains=chains
        )
        assert opt.num_shuttles <= int(base.num_shuttles * 1.05)
