"""Traffic-block resolution tests (Section III-C / Algorithm 2)."""

import pytest

from repro.arch import linear_topology, uniform_machine
from repro.circuits.gate import Gate
from repro.compiler.rebalance import (
    max_score_with_value,
    select_destination_trap,
    select_eviction,
    select_ion_chain_head,
    select_ion_max_score,
)
from repro.compiler.state import CompilationError, CompilerState


def fig7_state():
    """Fig. 7's setup: L6 with T4 full.

    ECs in the figure: T0=2, T1=1, T2=4, T3=2, T4=0, T5=5.  With
    capacity 5 that means occupancies 3, 4, 1, 3, 5, 0.
    """
    machine = uniform_machine(linear_topology(6), 5, 1)
    chains = {
        0: [0, 1, 2],
        1: [3, 4, 5, 6],
        2: [7],
        3: [8, 9, 10],
        4: [11, 12, 13, 14, 15],
        5: [],
    }
    return CompilerState(machine, chains)


class TestDestinationSelection:
    def test_lowest_index_reproduces_fig7_problem(self):
        """The [7] logic scans from trap 0 and picks T0 (4 shuttles away)."""
        state = fig7_state()
        assert select_destination_trap(state, 4, "lowest-index") == 0

    def test_nearest_reproduces_fig7_fix(self):
        """Algorithm 2 picks a free direct neighbour of T4 (1 shuttle)."""
        state = fig7_state()
        destination = select_destination_trap(state, 4, "nearest")
        assert destination in (3, 5)
        assert state.machine.topology.distance(4, destination) == 1

    def test_nearest_tie_breaks_to_lower_id(self):
        state = fig7_state()
        assert select_destination_trap(state, 4, "nearest") == 3

    def test_full_traps_excluded(self):
        machine = uniform_machine(linear_topology(3), 2, 1)
        state = CompilerState(machine, {0: [0, 1], 1: [2, 3], 2: []})
        assert select_destination_trap(state, 0, "nearest") == 2

    def test_exclude_parameter(self):
        state = fig7_state()
        destination = select_destination_trap(
            state, 4, "nearest", exclude=frozenset({3})
        )
        assert destination == 5

    def test_no_destination_raises(self):
        machine = uniform_machine(linear_topology(2), 2, 1)
        state = CompilerState(machine, {0: [0, 1], 1: [2, 3]})
        with pytest.raises(CompilationError):
            select_destination_trap(state, 0, "nearest")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            select_destination_trap(fig7_state(), 4, "nope")


class TestIonSelection:
    def test_chain_head(self):
        state = fig7_state()
        assert select_ion_chain_head(state, 4, frozenset()) == 11

    def test_chain_head_skips_pinned(self):
        state = fig7_state()
        assert select_ion_chain_head(state, 4, frozenset({11, 12})) == 13

    def test_chain_head_all_pinned_raises(self):
        state = fig7_state()
        with pytest.raises(CompilationError):
            select_ion_chain_head(state, 4, frozenset(range(11, 16)))

    def test_max_score_prefers_destination_gates(self):
        state = fig7_state()
        # Ion 12 has two upcoming gates with partners in T5... T5 is
        # empty, so use T3 as destination: partner 8 lives there.
        upcoming = [Gate("ms", (12, 8)), Gate("ms", (12, 9))]
        ion = select_ion_max_score(
            state, 4, 3, frozenset(), upcoming, window=16
        )
        assert ion == 12

    def test_max_score_avoids_source_anchored_ions(self):
        state = fig7_state()
        # Ion 11 has gates inside T4 (partner 12): keep it there.
        upcoming = [Gate("ms", (11, 12)), Gate("ms", (11, 13))]
        ion = select_ion_max_score(
            state, 4, 3, frozenset(), upcoming, window=16
        )
        assert ion != 11

    def test_max_score_value_signs(self):
        state = fig7_state()
        # dest_count > source_count: positive score
        _, score = max_score_with_value(
            state, 4, 3, frozenset(), [Gate("ms", (12, 8))], 16
        )
        assert score > 0
        # no gates at all: score 0 under the tie weights
        _, score0 = max_score_with_value(state, 4, 3, frozenset(), [], 16)
        assert score0 == 0.0

    def test_tie_weights_give_negative_score(self):
        """Equal dest/source counts use wd=0.49/ws=0.51 => score < 0."""
        state = fig7_state()
        upcoming = [Gate("ms", (12, 8)), Gate("ms", (12, 13))]
        counts_equal_ion = 12  # one dest (8 in T3), one source (13 in T4)
        eligible = {
            ion: max_score_with_value(
                state, 4, 3, frozenset({i for i in range(11, 16) if i != ion}),
                upcoming, 16,
            )[1]
            for ion in [counts_equal_ion]
        }
        assert eligible[counts_equal_ion] == pytest.approx(0.49 - 0.51)

    def test_window_limits_scan(self):
        state = fig7_state()
        filler = [Gate("ms", (0, 1))] * 20
        upcoming = filler + [Gate("ms", (12, 8))]
        # window smaller than the filler: the informative gate is unseen
        ion = select_ion_max_score(
            state, 4, 3, frozenset(), upcoming, window=5
        )
        assert ion == 11  # falls back to first (all scores equal)

    def test_transit_partner_skipped(self):
        state = fig7_state()
        # Partner 99 is not mapped anywhere (in transit): no crash.
        upcoming = [Gate("ms", (12, 99))]
        ion = select_ion_max_score(
            state, 4, 3, frozenset(), upcoming, window=16
        )
        assert ion in state.chains[4] or ion in range(11, 16)


class TestSelectEviction:
    def test_combined(self):
        state = fig7_state()
        ion, destination = select_eviction(
            state,
            4,
            strategy="nearest",
            ion_selection="max-score",
            pinned=frozenset(),
            upcoming=[Gate("ms", (12, 8))],
            window=16,
        )
        assert destination == 3
        assert ion == 12

    def test_unknown_ion_selection(self):
        with pytest.raises(ValueError):
            select_eviction(
                fig7_state(),
                4,
                strategy="nearest",
                ion_selection="nope",
                pinned=frozenset(),
                upcoming=[],
                window=16,
            )
