"""Tests for the serving layer: spec wire format, error envelope,
config, admission control, lifecycle, HTTP end-to-end, overload
acceptance, and live-mode load generation.

Layered for determinism:

* **Admission tests** run against an *unstarted* :class:`CompileService`
  — submissions are admitted into the table but never dispatched, so
  queue-depth shedding, in-flight dedup and rate limiting are exact,
  not timing-dependent.
* **Lifecycle tests** start the service with tiny circuits (6 qubits /
  20 gates compile in well under a millisecond).
* **The overload acceptance test** uses deliberately heavy jobs
  (48q/800g, ~40 ms each) against 2 workers and a queue depth of 4,
  with an open-loop arrival rate far above service capacity.
"""

from __future__ import annotations

import json
import threading
from time import monotonic, sleep

import pytest

from repro.batch.cache import NullCache, ResultCache
from repro.batch.spec import JobSpec
from repro.loadgen import LiveRunner, LoadRunner
from repro.loadgen.scenario import Scenario, WorkloadItem
from repro.serve import (
    ERROR_STATUS,
    SERVE_PRESETS,
    CompileService,
    RateLimit,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerHandle,
    error_envelope,
    load_serve_config,
    outcome_to_code,
)

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def tiny_payload(seed: int = 1) -> dict:
    """A spec document that compiles in well under a millisecond."""
    return {
        "kind": "random",
        "machine": "linear3",
        "qubits": 6,
        "gates": 20,
        "seed": seed,
    }


def heavy_payload(seed: int = 1) -> dict:
    """~40 ms of real compilation work (overload tests)."""
    return {
        "kind": "random",
        "machine": "linear4",
        "qubits": 48,
        "gates": 800,
        "seed": seed,
    }


FAST_CONFIG = ServeConfig(
    workers=2,
    max_queue_depth=16,
    housekeeping_interval=0.1,
    drain_deadline=30.0,
)


def wait_done(service: CompileService, job_id: str, timeout: float = 30.0) -> dict:
    deadline = monotonic() + timeout
    while monotonic() < deadline:
        status = service.status(job_id)
        if status["state"] == "done":
            return status
        sleep(0.01)
    raise AssertionError(f"job {job_id} not done within {timeout}s")


# ---------------------------------------------------------------------------
# JobSpec: the wire format
# ---------------------------------------------------------------------------


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec.from_dict(tiny_payload())
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown job spec field"):
            JobSpec.from_dict({**tiny_payload(), "qbits": 6})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            JobSpec.from_dict([1, 2, 3])

    @pytest.mark.parametrize(
        "mutation,match",
        [
            ({"kind": "quantum"}, "unknown job kind"),
            ({"config": "turbo"}, "unknown config"),
            ({"kind": "bench", "name": "fourier"}, "unknown bench circuit"),
            ({"seed": None}, "circuit seed"),
            ({"qubits": None}, "qubit count"),
            ({"qubits": 100_000}, "qubits must be"),
            ({"gates": 10_000_000}, "gates must be"),
            ({"family": "exotic"}, "unknown random family"),
            ({"deadline": -1.0}, "deadline must be"),
        ],
    )
    def test_validation(self, mutation, match):
        with pytest.raises(ValueError, match=match):
            JobSpec.from_dict({**tiny_payload(), **mutation})

    def test_bad_machine_rejected(self):
        with pytest.raises(ValueError):
            JobSpec.from_dict({**tiny_payload(), "machine": "warp9"})

    def test_fingerprint_survives_serialization(self):
        """The core wire-format property: a spec resolves to the same
        content fingerprint on either side of a JSON round trip."""
        spec = JobSpec.from_dict(heavy_payload(seed=7))
        wire = json.loads(json.dumps(spec.to_dict()))
        assert JobSpec.from_dict(wire).fingerprint() == spec.fingerprint()

    def test_deadline_excluded_from_fingerprint(self):
        plain = JobSpec.from_dict(tiny_payload())
        budgeted = JobSpec.from_dict({**tiny_payload(), "deadline": 5.0})
        assert plain.fingerprint() == budgeted.fingerprint()

    def test_deadline_reaches_compile_job(self):
        spec = JobSpec.from_dict({**tiny_payload(), "deadline": 5.0})
        assert spec.resolve().deadline == 5.0

    def test_scenario_streams_agree(self):
        """spec_stream and job_stream expand to the same fingerprints
        — the live/in-process equivalence at the draw level."""
        scenario = Scenario(
            name="eq",
            mix=(WorkloadItem("random", qubits=8, gates=30),),
            machines=("linear3",),
            jobs=5,
            seed=11,
        )
        spec_fps = [s.fingerprint() for s in scenario.draw_specs(5)]
        job_fps = [j.fingerprint() for j in scenario.draw_jobs(5)]
        assert spec_fps == job_fps


# ---------------------------------------------------------------------------
# The frozen error envelope
# ---------------------------------------------------------------------------


class TestErrorEnvelope:
    def test_shape_is_frozen(self):
        doc = error_envelope("shed", "queue full", retry_after=1.5,
                             detail={"queue_depth": 4})
        assert set(doc) == {"error"}
        assert set(doc["error"]) == {
            "code", "message", "retry_after", "detail",
        }
        assert doc["error"]["code"] == "shed"
        assert doc["error"]["retry_after"] == 1.5

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            error_envelope("teapot", "short and stout")
        with pytest.raises(ValueError):
            ServeError("teapot", "short and stout")

    @pytest.mark.parametrize(
        "outcome,code",
        [
            ("failed", "internal"),
            ("timeout", "timeout"),
            ("crashed", "crashed"),
            ("poisoned", "quarantined"),
            ("anything-else", "internal"),
        ],
    )
    def test_outcome_mapping(self, outcome, code):
        assert outcome_to_code(outcome) == code

    def test_http_status_table(self):
        assert ERROR_STATUS["validation"] == 400
        assert ERROR_STATUS["not_found"] == 404
        assert ERROR_STATUS["not_ready"] == 409
        assert ERROR_STATUS["rate_limited"] == 429
        assert ERROR_STATUS["shed"] == 429
        assert ERROR_STATUS["draining"] == 503
        assert ERROR_STATUS["timeout"] == 504
        for code in ("quarantined", "crashed", "internal"):
            assert ERROR_STATUS[code] == 500
        for code in ERROR_STATUS:
            assert ServeError(code, "x").http_status == ERROR_STATUS[code]


# ---------------------------------------------------------------------------
# ServeConfig + presets
# ---------------------------------------------------------------------------


class TestServeConfig:
    def test_round_trip(self):
        config = ServeConfig(
            workers=3,
            max_queue_depth=9,
            rate_limit=RateLimit(limit=5, window_seconds=2.0),
            job_timeout=7.0,
        )
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown serve config"):
            ServeConfig.from_dict({"wrokers": 2})

    def test_validation(self):
        for bad in (
            {"workers": 0},
            {"max_queue_depth": 0},
            {"max_attempts": 0},
            {"job_timeout": -1.0},
            {"drain_deadline": 0.0},
        ):
            with pytest.raises(ValueError):
                ServeConfig(**bad)
        with pytest.raises(ValueError):
            RateLimit(limit=0, window_seconds=1.0)

    def test_override_ignores_none(self):
        config = ServeConfig()
        assert config.override(workers=None, job_ttl=None) is config
        assert config.override(workers=5).workers == 5

    def test_presets_resolve(self):
        for name, preset in SERVE_PRESETS.items():
            assert load_serve_config(name) == preset
            assert preset.describe()  # renders without raising

    def test_load_from_json_file(self, tmp_path):
        path = tmp_path / "serve.json"
        config = SERVE_PRESETS["steady"]
        path.write_text(json.dumps(config.to_dict()))
        assert load_serve_config(str(path)) == config

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown serve config"):
            load_serve_config("hyperdrive")


# ---------------------------------------------------------------------------
# Admission control (unstarted service: nothing dispatches, so queue
# state is exact)
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_submit_admits_pending_record(self):
        service = CompileService(FAST_CONFIG)
        record = service.submit(tiny_payload(), "alice")
        assert record.state == "pending"
        assert record.job_id == "j000000"
        assert service.pending == 1
        status = service.status(record.job_id)
        assert status["state"] == "pending"
        assert status["outcome"] is None

    def test_unknown_job_is_not_found(self):
        service = CompileService(FAST_CONFIG)
        with pytest.raises(ServeError) as excinfo:
            service.status("j999999")
        assert excinfo.value.code == "not_found"

    def test_artifacts_before_done_is_not_ready(self):
        service = CompileService(FAST_CONFIG)
        record = service.submit(tiny_payload(), "alice")
        with pytest.raises(ServeError) as excinfo:
            service.artifacts(record.job_id)
        assert excinfo.value.code == "not_ready"
        assert excinfo.value.http_status == 409

    def test_invalid_payload_is_validation_error(self):
        service = CompileService(FAST_CONFIG)
        with pytest.raises(ServeError) as excinfo:
            service.submit({"kind": "quantum"}, "alice")
        assert excinfo.value.code == "validation"

    def test_inflight_resubmit_dedups(self):
        service = CompileService(FAST_CONFIG)
        first = service.submit(tiny_payload(seed=3), "alice")
        second = service.submit(tiny_payload(seed=3), "bob")
        assert second is first
        assert first.deduped == 1
        assert service.pending == 1  # the duplicate consumed no slot

    def test_queue_depth_sheds_with_retry_after(self):
        config = ServeConfig(
            workers=1, max_queue_depth=2, default_retry_after=0.25
        )
        service = CompileService(config)
        service.submit(tiny_payload(seed=1), "alice")
        service.submit(tiny_payload(seed=2), "alice")
        with pytest.raises(ServeError) as excinfo:
            service.submit(tiny_payload(seed=3), "alice")
        err = excinfo.value
        assert err.code == "shed"
        assert err.http_status == 429
        # No service time observed yet: the configured fallback.
        assert err.retry_after == 0.25
        assert err.detail == {"queue_depth": 2}
        assert service.pending == 2  # the shed request queued nothing

    def test_rate_limit_per_identity(self):
        config = ServeConfig(
            workers=1,
            max_queue_depth=32,
            rate_limit=RateLimit(limit=2, window_seconds=60.0),
        )
        service = CompileService(config)
        service.submit(tiny_payload(seed=1), "alice")
        service.submit(tiny_payload(seed=2), "alice")
        with pytest.raises(ServeError) as excinfo:
            service.submit(tiny_payload(seed=3), "alice")
        assert excinfo.value.code == "rate_limited"
        assert excinfo.value.retry_after > 0
        # A different identity has its own window.
        record = service.submit(tiny_payload(seed=4), "bob")
        assert record.state == "pending"

    def test_validation_never_consumes_a_rate_slot(self):
        config = ServeConfig(
            workers=1,
            rate_limit=RateLimit(limit=1, window_seconds=60.0),
        )
        service = CompileService(config)
        with pytest.raises(ServeError):
            service.submit({"kind": "quantum"}, "alice")
        # The malformed request must not have burned alice's only slot.
        record = service.submit(tiny_payload(), "alice")
        assert record.state == "pending"

    def test_readiness_reports_saturation(self):
        config = ServeConfig(workers=1, max_queue_depth=1)
        service = CompileService(config)
        assert service.readiness()["saturated"] is False
        service.submit(tiny_payload(), "alice")
        readiness = service.readiness()
        assert readiness["saturated"] is True
        assert readiness["ready"] is False


# ---------------------------------------------------------------------------
# Lifecycle (started service, real compilation)
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_submit_poll_fetch_and_clean_drain(self):
        with CompileService(FAST_CONFIG) as service:
            record = service.submit(tiny_payload(), "alice")
            status = wait_done(service, record.job_id)
            assert status["outcome"] == "ok"
            assert status["seconds"] is not None
            artifacts = service.artifacts(record.job_id)
            assert artifacts["id"] == record.job_id
            assert artifacts["result"]["num_shuttles"] >= 0
            assert artifacts["cache_hit"] is False
            assert service.drain() is True
        # After drain, admission is closed.
        with pytest.raises(ServeError) as excinfo:
            service.submit(tiny_payload(seed=9), "alice")
        assert excinfo.value.code == "draining"
        assert excinfo.value.http_status == 503

    def test_failed_job_carries_error_envelope(self):
        with CompileService(FAST_CONFIG) as service:
            # 40 qubits on a 3-trap machine with 2-ion traps: the
            # compiler cannot place the register -> failed outcome.
            record = service.submit(
                {
                    "kind": "random",
                    "machine": "linear3",
                    "qubits": 64,
                    "gates": 30,
                    "seed": 1,
                },
                "alice",
            )
            status = wait_done(service, record.job_id)
            assert status["outcome"] == "failed"
            assert status["error"]["error"]["code"] == "internal"
            with pytest.raises(ServeError) as excinfo:
                service.artifacts(record.job_id)
            assert excinfo.value.code == "internal"

    def test_cache_hit_completes_instantly(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = tiny_payload(seed=42)
        with CompileService(FAST_CONFIG, cache) as service:
            record = service.submit(payload, "alice")
            wait_done(service, record.job_id)
            assert service.drain() is True
        assert len(cache) == 1
        # A fresh service over the same cache: instant completion,
        # without consuming queue capacity.
        fresh = CompileService(FAST_CONFIG, ResultCache(tmp_path))
        record = fresh.submit(payload, "bob")
        assert record.state == "done"
        assert record.cache_hit is True
        assert record.outcome == "ok"
        assert fresh.pending == 0
        artifacts = fresh.artifacts(record.job_id)
        assert artifacts["cache_hit"] is True

    def test_housekeeper_expires_done_records(self):
        with CompileService(FAST_CONFIG) as service:
            record = service.submit(tiny_payload(seed=5), "alice")
            wait_done(service, record.job_id)
            # Within TTL the record survives a sweep...
            assert service.sweep() == 0
            # ...past it, the record expires and lookups 404.
            expired = service.sweep(
                now=monotonic() + FAST_CONFIG.job_ttl + 1.0
            )
            assert expired == 1
            with pytest.raises(ServeError) as excinfo:
                service.status(record.job_id)
            assert excinfo.value.code == "not_found"
            assert service.drain() is True

    def test_hard_stop_marks_inflight_aborted(self):
        config = ServeConfig(workers=1, max_queue_depth=16)
        with CompileService(config) as service:
            # ~300 ms of compilation per job on one worker: the tiny
            # drain deadline below is guaranteed to strand in-flight
            # work (a poll slice is ~50 ms, far below one job).
            ids = [
                service.submit(
                    {
                        "kind": "random",
                        "machine": "linear4",
                        "qubits": 48,
                        "gates": 6000,
                        "seed": s,
                    },
                    "alice",
                ).job_id
                for s in range(1, 4)
            ]
            # A deadline far shorter than the backlog: the drain must
            # hard-stop, and every admitted job still gets a terminal
            # state — aborted, never silently lost.
            clean = service.drain(deadline=0.02)
            assert clean is False
            assert service.pending == 0
            outcomes = {service.status(j)["outcome"] for j in ids}
            assert "aborted" in outcomes
            assert all(
                service.status(j)["state"] == "done" for j in ids
            )
            aborted = [
                j for j in ids
                if service.status(j)["outcome"] == "aborted"
            ]
            envelope = service.status(aborted[0])["error"]["error"]
            assert envelope["code"] == "internal"
            assert "drain deadline" in envelope["message"]

    def test_health_is_green_while_running(self):
        with CompileService(FAST_CONFIG) as service:
            assert service.health()["ok"] is True
            service.drain()


# ---------------------------------------------------------------------------
# HTTP end-to-end
# ---------------------------------------------------------------------------


class TestHTTP:
    def test_full_job_cycle(self):
        with ServerHandle(FAST_CONFIG) as handle:
            client = ServeClient(handle.url, identity="t-http")
            response = client.submit(tiny_payload())
            assert response.status == 202
            job_id = response.body["id"]
            done = client.wait(job_id, timeout=30.0)
            assert done.ok and done.body["outcome"] == "ok"
            artifacts = client.artifacts(job_id)
            assert artifacts.status == 200
            assert artifacts.body["result"]["num_shuttles"] >= 0
            assert client.health().ok
            assert client.readiness().ok
            config_doc = client.server_config()
            assert config_doc.status == 200
            assert config_doc.body == FAST_CONFIG.to_dict()

    def test_error_routes(self):
        with ServerHandle(FAST_CONFIG) as handle:
            client = ServeClient(handle.url)
            assert client.status("j999999").status == 404
            nope = client.request("GET", "/v2/frobnicate")
            assert nope.status == 404
            assert nope.error_code == "not_found"
            bad = client.submit({"kind": "quantum"})
            assert bad.status == 400
            assert bad.error_code == "validation"
            not_object = client.request("POST", "/v1/jobs", None)
            assert not_object.status == 400

    def test_oversized_body_rejected(self):
        with ServerHandle(FAST_CONFIG) as handle:
            client = ServeClient(handle.url)
            huge = {**tiny_payload(), "machine": "l6"}
            huge = dict(huge)  # 64 KiB of padding via a rejected field
            huge["padding"] = "x" * (70 * 1024)
            response = client.submit(huge)
            assert response.status == 400
            assert response.error_code == "validation"
            assert "byte limit" in response.body["error"]["message"]

    def test_rate_limit_keyed_by_identity_header(self):
        config = ServeConfig(
            workers=2,
            max_queue_depth=32,
            rate_limit=RateLimit(limit=1, window_seconds=3600.0),
        )
        with ServerHandle(config) as handle:
            alice = ServeClient(handle.url, identity="alice")
            bob = ServeClient(handle.url, identity="bob")
            assert alice.submit(tiny_payload(seed=1)).status == 202
            limited = alice.submit(tiny_payload(seed=2))
            assert limited.status == 429
            assert limited.error_code == "rate_limited"
            assert limited.retry_after > 0
            # The other identity is untouched.
            assert bob.submit(tiny_payload(seed=3)).status == 202

    def test_server_fingerprint_matches_local_resolution(self):
        """Live equivalence: the server resolves a submitted spec to
        the same content fingerprint the client computes locally."""
        scenario = Scenario(
            name="fp",
            mix=(
                WorkloadItem("random", qubits=8, gates=30),
                WorkloadItem("bench", name="qft", qubits=8),
            ),
            machines=("linear3",),
            jobs=4,
            seed=23,
        )
        with ServerHandle(FAST_CONFIG) as handle:
            client = ServeClient(handle.url, identity="fp")
            for spec in scenario.draw_specs(4):
                response = client.submit(spec.to_dict())
                assert response.status == 202
                assert response.body["fingerprint"] == spec.fingerprint()


# ---------------------------------------------------------------------------
# The overload acceptance test
# ---------------------------------------------------------------------------


OVERLOAD_SCENARIO = Scenario(
    name="overload",
    description="Arrivals far above service capacity: sheds expected.",
    mix=(WorkloadItem("random", qubits=48, gates=800),),
    machines=("linear4",),
    mode="open",
    rate=200.0,
    jobs=40,
    cache="disabled",
    seed=7,
    sample_interval=0.25,
)


class TestOverloadAcceptance:
    def test_sheds_stays_healthy_drains_clean(self):
        """The PR's acceptance criteria, in one test: a 2-worker
        service under an arrival rate far above capacity (a) sheds
        with 429s instead of queueing unboundedly, (b) keeps /healthz
        green throughout, (c) bounds the latency of *admitted*
        requests, and (d) drains clean — zero admitted jobs lost."""
        config = ServeConfig(
            workers=2,
            max_queue_depth=4,
            default_retry_after=0.05,
            housekeeping_interval=0.1,
            drain_deadline=60.0,
        )
        handle = ServerHandle(config).start()
        health_client = ServeClient(handle.url, timeout=5.0)
        health_samples: list[bool] = []
        stop_health = threading.Event()

        def watch_health() -> None:
            while not stop_health.wait(timeout=0.05):
                health_samples.append(health_client.health().ok)

        watcher = threading.Thread(target=watch_health, daemon=True)
        watcher.start()
        try:
            runner = LoadRunner(OVERLOAD_SCENARIO, target=handle.url)
            report = runner.run()
        finally:
            stop_health.set()
            watcher.join(timeout=5.0)
            clean = handle.drain()
            handle.close()

        counts = report.counts
        # (a) Overload was real and answered with shedding, and the
        # queue stayed bounded (pending can never exceed the depth —
        # submit() refuses first — so shed > 0 proves the bound bit).
        assert counts["refused"] > 0, counts
        admitted = counts["jobs"] - counts["refused"]
        assert admitted > 0, counts
        refusals = {
            o: n
            for o, n in report.resilience["outcomes"].items()
            if o in ("shed", "rate_limited", "draining")
        }
        assert sum(refusals.values()) == counts["refused"]
        assert refusals.get("shed", 0) > 0
        # (b) Liveness stayed green under overload — every sample.
        assert health_samples, "health watcher never sampled"
        assert all(health_samples)
        # (c) Latency percentiles cover admitted requests only and are
        # bounded: depth-4 queue x ~40ms jobs on 2 workers keeps even
        # p99 sojourn far below this generous ceiling.
        assert report.latency["count"] == admitted
        assert report.latency["p99"] is not None
        assert report.latency["p99"] < 30.0
        # (d) Zero lost: every planned request has a terminal record,
        # and the drain finished everything admitted.
        assert report.resilience["lost"] == 0
        assert counts["jobs"] == OVERLOAD_SCENARIO.jobs
        assert clean is True


# ---------------------------------------------------------------------------
# Live-mode load generation
# ---------------------------------------------------------------------------


LIVE_SCENARIO = Scenario(
    name="live-smoke",
    mix=(WorkloadItem("random", qubits=8, gates=30),),
    machines=("linear3",),
    mode="closed",
    consumers=2,
    jobs=6,
    seed=5,
)


class TestLiveMode:
    def test_closed_loop_against_live_server(self):
        with ServerHandle(FAST_CONFIG) as handle:
            report = LoadRunner(LIVE_SCENARIO, target=handle.url).run()
        assert report.target == handle.url
        assert report.interrupted is False
        assert report.counts["jobs"] == 6
        assert report.counts["ok"] == 6
        assert report.counts["refused"] == 0
        assert report.resilience["lost"] == 0
        assert report.latency["count"] == 6

    def test_open_loop_live_records_are_index_complete(self):
        scenario = Scenario(
            name="live-open",
            mix=(WorkloadItem("random", qubits=8, gates=30),),
            machines=("linear3",),
            mode="open",
            rate=50.0,
            jobs=8,
            seed=5,
        )
        with ServerHandle(FAST_CONFIG) as handle:
            records, wall, planned = LiveRunner(
                scenario, handle.url
            ).run()
        assert planned == 8
        assert sorted(r.index for r in records) == list(range(8))
        assert all(r.outcome == "ok" for r in records)

    def test_preset_interrupt_yields_partial_marked_report(self):
        interrupt = threading.Event()
        interrupt.set()
        with ServerHandle(FAST_CONFIG) as handle:
            report = LoadRunner(
                LIVE_SCENARIO, target=handle.url, interrupt=interrupt
            ).run()
        assert report.interrupted is True
        # Every planned draw still owes a record: all interrupted.
        assert report.counts["jobs"] == 6
        assert report.counts["refused"] == 6
        assert report.resilience["outcomes"] == {"interrupted": 6}
        assert report.resilience["lost"] == 0

    def test_unreachable_target_raises(self):
        from repro.serve import ServeUnavailable

        runner = LiveRunner(LIVE_SCENARIO, "http://127.0.0.1:1")
        runner.client.wait_until_up = lambda timeout=0: False
        with pytest.raises(ServeUnavailable):
            runner.run()
