"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import linear_topology, ring_topology, uniform_machine
from repro.circuits.circuit import Circuit
from repro.circuits.dag import DependencyDAG
from repro.circuits.gate import Gate
from repro.circuits.qasm import parse_qasm
from repro.circuits.qasm_writer import circuit_to_qasm
from repro.compiler import CompilerConfig, compile_circuit
from repro.sim.simulator import Simulator

_SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def circuits(draw, max_qubits=10, max_gates=40):
    """Random two-qubit-gate circuits."""
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=0, max_value=max_gates))
    circuit = Circuit(num_qubits, name="hyp")
    for _ in range(num_gates):
        a = draw(st.integers(min_value=0, max_value=num_qubits - 1))
        b = draw(
            st.integers(min_value=0, max_value=num_qubits - 1).filter(
                lambda v, a=a: v != a
            )
        )
        circuit.add("ms", a, b)
    return circuit


@st.composite
def machines(draw):
    traps = draw(st.integers(min_value=2, max_value=5))
    capacity = draw(st.integers(min_value=4, max_value=8))
    comm = draw(st.integers(min_value=1, max_value=2))
    ring = draw(st.booleans())
    topology = (
        ring_topology(max(traps, 3)) if ring else linear_topology(traps)
    )
    return uniform_machine(topology, capacity, comm)


class TestCompilationProperties:
    @given(circuit=circuits(), machine=machines(), baseline=st.booleans())
    @_SLOW
    def test_compiled_schedule_simulates_cleanly(
        self, circuit, machine, baseline
    ):
        """Whatever the compiler emits must replay on the machine: the
        simulator validates co-location, capacities, and transit states
        op by op."""
        if circuit.num_qubits > machine.load_capacity:
            return
        config = (
            CompilerConfig.baseline()
            if baseline
            else CompilerConfig.optimized()
        )
        result = compile_circuit(circuit, machine, config)
        report = Simulator(machine).run(result.schedule, result.initial_chains)
        assert report.num_gates == len(circuit)
        assert report.num_shuttles == result.num_shuttles
        assert report.program_log_fidelity <= 0.0
        assert math.isfinite(report.program_log_fidelity)

    @given(circuit=circuits(), machine=machines())
    @_SLOW
    def test_execution_order_respects_dependencies(self, circuit, machine):
        if circuit.num_qubits > machine.load_capacity:
            return
        result = compile_circuit(circuit, machine)
        assert DependencyDAG(circuit).is_valid_order(result.gate_order)

    @given(circuit=circuits(), machine=machines())
    @_SLOW
    def test_ion_conservation(self, circuit, machine):
        if circuit.num_qubits > machine.load_capacity:
            return
        result = compile_circuit(circuit, machine)
        initial = sorted(
            q for chain in result.initial_chains.values() for q in chain
        )
        final = sorted(
            q for chain in result.final_chains.values() for q in chain
        )
        assert initial == final == list(range(circuit.num_qubits))

    @given(circuit=circuits(max_gates=25), machine=machines())
    @_SLOW
    def test_splits_moves_merges_balanced(self, circuit, machine):
        if circuit.num_qubits > machine.load_capacity:
            return
        result = compile_circuit(circuit, machine)
        schedule = result.schedule
        assert schedule.num_splits == schedule.num_merges
        assert schedule.num_shuttles >= schedule.num_splits


class TestDagProperties:
    @given(circuit=circuits(max_gates=30))
    @_SLOW
    def test_topological_order_always_valid(self, circuit):
        dag = DependencyDAG(circuit)
        assert dag.is_valid_order(dag.topological_order())

    @given(circuit=circuits(max_gates=30))
    @_SLOW
    def test_layers_are_antichains(self, circuit):
        """No two gates in one layer may share a qubit."""
        dag = DependencyDAG(circuit)
        for layer in dag.layers():
            seen = set()
            for index in layer:
                qubits = set(dag.gate(index).qubits)
                assert not qubits & seen
                seen |= qubits

    @given(circuit=circuits(max_gates=30))
    @_SLOW
    def test_layer_equals_longest_predecessor_chain(self, circuit):
        dag = DependencyDAG(circuit)
        for index in range(len(dag)):
            preds = dag.predecessors(index)
            if preds:
                assert dag.layer_of(index) == 1 + max(
                    dag.layer_of(p) for p in preds
                )
            else:
                assert dag.layer_of(index) == 0


class TestQasmProperties:
    @given(circuit=circuits(max_gates=20))
    @_SLOW
    def test_round_trip_preserves_structure(self, circuit):
        reparsed = parse_qasm(circuit_to_qasm(circuit))
        assert reparsed.num_qubits == circuit.num_qubits
        # ms round-trips through the rxx macro: 2 cx per ms.
        assert reparsed.num_two_qubit_gates == 2 * circuit.num_two_qubit_gates

    @given(
        angles=st.lists(
            st.floats(
                min_value=-10, max_value=10, allow_nan=False
            ),
            min_size=1,
            max_size=5,
        )
    )
    @_SLOW
    def test_rotation_angles_round_trip(self, angles):
        circuit = Circuit(1)
        for angle in angles:
            circuit.add("rz", 0, params=[angle])
        reparsed = parse_qasm(circuit_to_qasm(circuit))
        for original, parsed in zip(circuit, reparsed):
            assert math.isclose(
                original.params[0], parsed.params[0], abs_tol=1e-9
            )
