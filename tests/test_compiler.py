"""End-to-end compiler tests: correctness invariants on small machines."""

import pytest

from repro.arch import l6_machine, linear_topology, uniform_machine
from repro.circuits.circuit import Circuit
from repro.circuits.dag import DependencyDAG
from repro.circuits.gate import Gate
from repro.compiler import (
    CompilationError,
    CompilerConfig,
    QCCDCompiler,
    compile_and_simulate,
    compile_circuit,
)
from repro.sim.ops import GateOp, MergeOp, MoveOp, SplitOp
from repro.sim.simulator import Simulator


def small_machine(traps=3, capacity=4, comm=1):
    return uniform_machine(linear_topology(traps), capacity, comm)


def replay_chains(initial, schedule):
    """Track chains through a schedule, asserting basic sanity."""
    chains = {t: list(c) for t, c in initial.items()}
    transit = {}
    for op in schedule:
        if isinstance(op, SplitOp):
            chains[op.trap].remove(op.ion)
            transit[op.ion] = op.trap
        elif isinstance(op, MoveOp):
            assert transit[op.ion] == op.src
            transit[op.ion] = op.dst
        elif isinstance(op, MergeOp):
            assert transit.pop(op.ion) == op.trap
            chains[op.trap].append(op.ion)
    return chains, transit


@pytest.fixture(params=["baseline", "optimized"])
def config(request):
    if request.param == "baseline":
        return CompilerConfig.baseline()
    return CompilerConfig.optimized()


class TestBasicCompiles:
    def test_empty_circuit(self, config):
        result = compile_circuit(Circuit(2), small_machine(), config)
        assert len(result.schedule) == 0
        assert result.num_shuttles == 0

    def test_local_gate_no_shuttle(self, config):
        circuit = Circuit(2).add("ms", 0, 1)
        result = compile_circuit(
            circuit, small_machine(), config, initial_chains={0: [0, 1]}
        )
        assert result.num_shuttles == 0
        assert result.schedule.num_gates == 1

    def test_cross_trap_gate_one_shuttle(self, config):
        circuit = Circuit(2).add("ms", 0, 1)
        result = compile_circuit(
            circuit, small_machine(), config,
            initial_chains={0: [0], 1: [1]},
        )
        assert result.num_shuttles == 1
        gate_ops = result.schedule.gate_ops()
        assert len(gate_ops) == 1

    def test_distant_gate_costs_distance_shuttles(self, config):
        circuit = Circuit(2).add("ms", 0, 1)
        result = compile_circuit(
            circuit, small_machine(traps=4), config,
            initial_chains={0: [0], 3: [1]},
        )
        assert result.num_shuttles == 3  # 3 hops either way

    def test_one_qubit_gates_never_shuttle(self, config):
        circuit = Circuit(4)
        for q in range(4):
            circuit.add("h", q)
        result = compile_circuit(
            circuit, small_machine(), config,
            initial_chains={0: [0, 1], 1: [2, 3]},
        )
        assert result.num_shuttles == 0
        assert result.schedule.num_gates == 4

    def test_three_qubit_gate_rejected(self, config):
        circuit = Circuit(3).add("ccx", 0, 1, 2)
        with pytest.raises(CompilationError):
            compile_circuit(circuit, small_machine(), config)

    def test_circuit_too_large_rejected(self, config):
        machine = small_machine(traps=2, capacity=3, comm=1)
        with pytest.raises(CompilationError):
            compile_circuit(Circuit(8).add("ms", 0, 7), machine, config)


class TestScheduleInvariants:
    def make_result(self, config, seed=3, gates=120, qubits=9):
        import random

        rng = random.Random(seed)
        circuit = Circuit(qubits)
        for _ in range(gates):
            a, b = rng.sample(range(qubits), 2)
            circuit.add("ms", a, b)
        machine = small_machine(traps=3, capacity=5, comm=1)
        return circuit, compile_circuit(circuit, machine, config)

    def test_all_gates_emitted_once(self, config):
        circuit, result = self.make_result(config)
        assert result.schedule.num_gates == len(circuit)
        assert sorted(result.gate_order) == list(range(len(circuit)))

    def test_execution_order_respects_dag(self, config):
        circuit, result = self.make_result(config)
        assert DependencyDAG(circuit).is_valid_order(result.gate_order)

    def test_gates_execute_co_located(self, config):
        circuit, result = self.make_result(config)
        chains = {t: list(c) for t, c in result.initial_chains.items()}
        transit = {}
        for op in result.schedule:
            if isinstance(op, GateOp):
                for qubit in op.gate.qubits:
                    assert qubit in chains[op.trap], (
                        f"gate {op.gate} in trap {op.trap} but chains are "
                        f"{chains}"
                    )
            elif isinstance(op, SplitOp):
                chains[op.trap].remove(op.ion)
                transit[op.ion] = op.trap
            elif isinstance(op, MoveOp):
                transit[op.ion] = op.dst
            elif isinstance(op, MergeOp):
                del transit[op.ion]
                chains[op.trap].append(op.ion)

    def test_capacity_never_exceeded(self, config):
        circuit, result = self.make_result(config)
        machine = small_machine(traps=3, capacity=5, comm=1)
        chains = {t: list(c) for t, c in result.initial_chains.items()}
        for op in result.schedule:
            if isinstance(op, SplitOp):
                chains[op.trap].remove(op.ion)
            elif isinstance(op, MergeOp):
                chains[op.trap].append(op.ion)
                assert len(chains[op.trap]) <= machine.trap(op.trap).capacity

    def test_final_chains_match_replay(self, config):
        circuit, result = self.make_result(config)
        chains, transit = replay_chains(result.initial_chains, result.schedule)
        assert not transit
        assert {t: sorted(c) for t, c in chains.items()} == {
            t: sorted(c) for t, c in result.final_chains.items()
        }

    def test_deterministic(self, config):
        _, first = self.make_result(config)
        _, second = self.make_result(config)
        assert first.schedule.ops == second.schedule.ops

    def test_simulator_accepts_schedule(self, config):
        circuit, result = self.make_result(config)
        machine = small_machine(traps=3, capacity=5, comm=1)
        report = Simulator(machine).run(result.schedule, result.initial_chains)
        assert report.num_gates == len(circuit)
        assert report.num_shuttles == result.num_shuttles


class TestMappingIntegration:
    def test_default_mapping_used(self, config):
        circuit = Circuit(4).add("ms", 0, 1).add("ms", 2, 3)
        result = compile_circuit(circuit, small_machine(), config)
        placed = sorted(
            q for chain in result.initial_chains.values() for q in chain
        )
        assert placed == [0, 1, 2, 3]

    def test_explicit_mapping_respected(self, config):
        circuit = Circuit(2).add("ms", 0, 1)
        result = compile_circuit(
            circuit, small_machine(), config, initial_chains={0: [0], 2: [1]}
        )
        assert result.initial_chains[0] == [0]
        assert result.initial_chains[2] == [1]

    def test_overfull_initial_chain_rejected(self, config):
        machine = small_machine(capacity=2)
        with pytest.raises(CompilationError):
            compile_circuit(
                Circuit(3).add("ms", 0, 1),
                machine,
                config,
                initial_chains={0: [0, 1, 2]},
            )

    def test_duplicate_ion_in_chains_rejected(self, config):
        with pytest.raises(CompilationError):
            compile_circuit(
                Circuit(2).add("ms", 0, 1),
                small_machine(),
                config,
                initial_chains={0: [0, 1], 1: [1]},
            )


class TestOptimizedVsBaseline:
    def test_paper_headline_on_small_example(self):
        """The Fig. 4 pathology: baseline 4 shuttles, future-ops 1."""
        machine = uniform_machine(linear_topology(2), 4, 1)
        circuit = Circuit(5)
        for a, b in [(1, 2), (2, 3), (1, 2), (2, 4)]:
            circuit.add("ms", a, b)
        chains = {0: [0, 1], 1: [2, 3, 4]}
        base = compile_circuit(
            circuit, machine, CompilerConfig.baseline(), initial_chains=chains
        )
        opt_cfg = CompilerConfig.optimized().variant(
            capacity_guard=0, proximity_metric="gates"
        )
        opt = compile_circuit(
            circuit, machine, opt_cfg, initial_chains=chains
        )
        assert base.num_shuttles == 4
        assert opt.num_shuttles == 1

    def test_compile_and_simulate_wrapper(self):
        circuit = Circuit(4).add("ms", 0, 2).add("ms", 1, 3)
        result, report = compile_and_simulate(circuit, small_machine())
        assert report.num_gates == 2
        assert result.circuit_name == circuit.name

    def test_compile_time_recorded(self, config):
        circuit = Circuit(2).add("ms", 0, 1)
        result = compile_circuit(circuit, small_machine(), config)
        assert result.compile_time >= 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CompilerConfig(shuttle_policy="nope")
        with pytest.raises(ValueError):
            CompilerConfig(rebalance="nope")
        with pytest.raises(ValueError):
            CompilerConfig(ion_selection="nope")
        with pytest.raises(ValueError):
            CompilerConfig(proximity=-3)
        with pytest.raises(ValueError):
            CompilerConfig(capacity_guard=-1)
        with pytest.raises(ValueError):
            CompilerConfig(score_decay=1.5)
        with pytest.raises(ValueError):
            CompilerConfig(rebalance_window=0)

    def test_variant_preserves_other_fields(self):
        config = CompilerConfig.optimized().variant(proximity=3)
        assert config.proximity == 3
        assert config.rebalance == "nearest"

    def test_default_config_is_optimized(self):
        machine = small_machine()
        assert QCCDCompiler(machine).config.name == "this-work"
