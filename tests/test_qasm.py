"""Unit tests for the OpenQASM 2.0 front end."""

import math

import pytest

from repro.circuits.gate import Gate
from repro.circuits.qasm import QasmError, parse_qasm

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestBasicParsing:
    def test_minimal_program(self):
        circuit = parse_qasm(HEADER + "qreg q[3];\ncx q[0], q[1];")
        assert circuit.num_qubits == 3
        assert circuit.gates == (Gate("cx", (0, 1)),)

    def test_without_header(self):
        circuit = parse_qasm("qreg q[2]; h q[0];")
        assert len(circuit) == 1

    def test_single_qubit_gates(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nh q[0];\nx q[0];\nt q[0];")
        assert [g.name for g in circuit] == ["h", "x", "t"]

    def test_parameterized_gate(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nrz(1.5) q[0];")
        assert circuit[0].params == (1.5,)

    def test_pi_expression(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nrz(pi/2) q[0];")
        assert circuit[0].params == (math.pi / 2,)

    def test_arithmetic_expression(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nrz(3*pi/4 - 1) q[0];")
        assert circuit[0].params == pytest.approx((3 * math.pi / 4 - 1,))

    def test_unary_minus_and_power(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nrz(-2^3) q[0];")
        assert circuit[0].params == (-8.0,)

    def test_function_call(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nrz(cos(0)) q[0];")
        assert circuit[0].params == (1.0,)

    def test_scientific_notation(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nrz(1e-3) q[0];")
        assert circuit[0].params == (1e-3,)

    def test_multi_param_gate(self):
        circuit = parse_qasm(HEADER + "qreg q[1];\nu3(0.1, 0.2, 0.3) q[0];")
        assert circuit[0].params == pytest.approx((0.1, 0.2, 0.3))

    def test_comments_ignored(self):
        source = HEADER + "// line comment\nqreg q[2];\n/* block\ncomment */cx q[0], q[1];"
        assert len(parse_qasm(source)) == 1

    def test_measure_and_barrier_skipped(self):
        source = (
            HEADER
            + "qreg q[2];\ncreg c[2];\nbarrier q;\ncx q[0], q[1];\n"
            + "measure q[0] -> c[0];\nreset q[1];"
        )
        circuit = parse_qasm(source)
        assert [g.name for g in circuit] == ["cx"]


class TestRegisters:
    def test_multiple_qregs_concatenated(self):
        source = HEADER + "qreg a[2];\nqreg b[3];\ncx a[1], b[0];"
        circuit = parse_qasm(source)
        assert circuit.num_qubits == 5
        assert circuit[0].qubits == (1, 2)

    def test_whole_register_broadcast(self):
        circuit = parse_qasm(HEADER + "qreg q[3];\nh q;")
        assert len(circuit) == 3
        assert {g.qubits[0] for g in circuit} == {0, 1, 2}

    def test_two_register_broadcast(self):
        source = HEADER + "qreg a[2];\nqreg b[2];\ncx a, b;"
        circuit = parse_qasm(source)
        assert circuit.gates == (Gate("cx", (0, 2)), Gate("cx", (1, 3)))

    def test_mixed_broadcast(self):
        source = HEADER + "qreg a[1];\nqreg b[2];\ncx a[0], b;"
        circuit = parse_qasm(source)
        assert circuit.gates == (Gate("cx", (0, 1)), Gate("cx", (0, 2)))

    def test_mismatched_broadcast_rejected(self):
        source = HEADER + "qreg a[2];\nqreg b[3];\ncx a, b;"
        with pytest.raises(QasmError):
            parse_qasm(source)

    def test_index_out_of_range(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[2];\nh q[5];")

    def test_duplicate_register_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[2];\nqreg q[3];")

    def test_unknown_register_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[2];\nh r[0];")


class TestGateDefinitions:
    def test_simple_macro(self):
        source = (
            HEADER
            + "qreg q[2];\n"
            + "gate mygate a, b { cx a, b; h a; }\n"
            + "mygate q[0], q[1];"
        )
        circuit = parse_qasm(source)
        assert [g.name for g in circuit] == ["cx", "h"]
        assert circuit[0].qubits == (0, 1)

    def test_parameterized_macro(self):
        source = (
            HEADER
            + "qreg q[1];\n"
            + "gate twist(theta) a { rz(theta/2) a; }\n"
            + "twist(pi) q[0];"
        )
        circuit = parse_qasm(source)
        assert circuit[0].params == pytest.approx((math.pi / 2,))

    def test_nested_macro(self):
        source = (
            HEADER
            + "qreg q[2];\n"
            + "gate inner a, b { cx a, b; }\n"
            + "gate outer a, b { inner a, b; inner b, a; }\n"
            + "outer q[0], q[1];"
        )
        circuit = parse_qasm(source)
        assert circuit.gates == (Gate("cx", (0, 1)), Gate("cx", (1, 0)))

    def test_macro_wrong_arity_rejected(self):
        source = (
            HEADER
            + "qreg q[2];\n"
            + "gate mygate a, b { cx a, b; }\n"
            + "mygate q[0];"
        )
        with pytest.raises(QasmError):
            parse_qasm(source)

    def test_macro_with_barrier_in_body(self):
        source = (
            HEADER
            + "qreg q[2];\n"
            + "gate mygate a, b { barrier a, b; cx a, b; }\n"
            + "mygate q[0], q[1];"
        )
        assert [g.name for g in parse_qasm(source)] == ["cx"]


class TestErrors:
    def test_no_qubits(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER)

    def test_unsupported_version(self):
        with pytest.raises(QasmError):
            parse_qasm('OPENQASM 3.0;\nqreg q[1];\nh q[0];')

    def test_unknown_gate(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nfrobnicate q[0];")

    def test_unknown_include(self):
        with pytest.raises(QasmError):
            parse_qasm('include "other.inc";\nqreg q[1];\nh q[0];')

    def test_opaque_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nopaque magic a;")

    def test_if_rejected(self):
        source = HEADER + "qreg q[1];\ncreg c[1];\nif (c==1) x q[0];"
        with pytest.raises(QasmError):
            parse_qasm(source)

    def test_error_carries_line_number(self):
        try:
            parse_qasm(HEADER + "qreg q[1];\nfrobnicate q[0];")
        except QasmError as exc:
            assert "line 4" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected QasmError")

    def test_unterminated_string(self):
        with pytest.raises(QasmError):
            parse_qasm('include "qelib1.inc;\nqreg q[1];')

    def test_division_by_zero_in_expression(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nrz(1/0) q[0];")

    def test_zero_size_register(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[0];\n")


class TestRealWorldShapes:
    def test_qft_style_program(self):
        lines = [HEADER, "qreg q[4];"]
        for i in range(4):
            lines.append(f"h q[{i}];")
            for j in range(i + 1, 4):
                lines.append(f"cu1(pi/{2 ** (j - i)}) q[{i}], q[{j}];")
        circuit = parse_qasm("\n".join(lines))
        assert circuit.num_two_qubit_gates == 6
        assert circuit.num_one_qubit_gates == 4

    def test_ghz_program(self):
        source = HEADER + "qreg q[4];\nh q[0];\ncx q[0], q[1];\ncx q[1], q[2];\ncx q[2], q[3];"
        circuit = parse_qasm(source)
        assert circuit.depth() == 4
