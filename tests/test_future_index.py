"""Property suite for the future-gate index (the compiler's hot path).

The :class:`~repro.compiler.future_index.FutureGateIndex` replaces the
per-decision rescan of the whole pending tail with per-ion gate-list
walks.  The engine's contract is *bit-identity*: indexed move scores,
eviction picks, Algorithm-1 re-order candidates and final schedules
must equal the tail scan's exactly, for every policy, proximity metric
and proximity cutoff.  This suite holds it to that on random circuits
over linear/ring/grid machines, comparing three implementations:

* the naive reference scan kept *in this test* (a frozen copy of the
  pre-index stream algorithm, immune to future refactors of the
  library's own fallback),
* the library's plain-iterable path (what external callers get),
* the indexed path through a :class:`FutureView`.

It also pins the memoization contract: one scoring pass per cross-trap
decision (``favoured`` + ``decide`` share the per-(gate, mapping-epoch)
memo), with the counter-based regression test the re-decision double
scan used to evade.
"""

import random
import zlib

import pytest

from repro.arch import grid_machine, linear_machine, ring_machine
from repro.circuits.circuit import Circuit
from repro.circuits.dag import DependencyDAG
from repro.compiler import CompilerConfig
from repro.compiler.compiler import QCCDCompiler
from repro.compiler.future_index import FutureGateIndex
from repro.compiler.mapping import greedy_initial_mapping
from repro.compiler.policies import FutureOpsPolicy, MoveScores
from repro.compiler.rebalance import max_score_with_value
from repro.compiler.reorder import find_reorder_candidate
from repro.compiler.state import CompilerState
from repro.compiler.config import (
    DEFAULT_WEIGHT_DEST,
    DEFAULT_WEIGHT_SOURCE,
    TIE_WEIGHT_DEST,
    TIE_WEIGHT_SOURCE,
)

MACHINES = {
    "linear": lambda: linear_machine(4, capacity=4, comm_capacity=1),
    "ring": lambda: ring_machine(5, capacity=4, comm_capacity=1),
    "grid": lambda: grid_machine(2, 3, capacity=4, comm_capacity=1),
}

PROXIMITIES = (0, 3, 6, None)


def random_circuit(rng: random.Random, num_qubits: int, num_gates: int):
    circuit = Circuit(num_qubits, name=f"fidx-{num_qubits}q")
    for _ in range(num_gates):
        if rng.random() < 0.2:
            circuit.add("x", rng.randrange(num_qubits))
        else:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.add("ms", a, b)
    return circuit


def reference_move_scores(
    policy, ion_a, ion_b, state, stream, active_layer
) -> MoveScores:
    """The pre-index stream scan, frozen verbatim as the test oracle."""
    trap_a = state.trap_of(ion_a)
    trap_b = state.trap_of(ion_b)
    score_ab = 0.0
    score_ba = 0.0
    use_layers = policy.proximity_metric == "layers"
    use_decay = policy.score_decay < 1.0
    last_relevant_layer = active_layer
    gap = 0
    for gate, layer in stream:
        if not gate.is_two_qubit:
            continue
        qubits = gate.qubits
        a_in = ion_a in qubits
        b_in = ion_b in qubits
        if not a_in and not b_in:
            if policy.proximity is None:
                continue
            if use_layers:
                if (
                    last_relevant_layer is not None
                    and layer - last_relevant_layer > policy.proximity
                ):
                    break
            else:
                gap += 1
                if gap > policy.proximity:
                    break
            continue
        if (
            policy.proximity is not None
            and use_layers
            and last_relevant_layer is not None
            and layer - last_relevant_layer > policy.proximity
        ):
            break
        last_relevant_layer = layer
        gap = 0
        weight = 1.0
        if use_decay and active_layer is not None:
            weight = policy.score_decay ** max(0, layer - active_layer)
        for ion, present in ((ion_a, a_in), (ion_b, b_in)):
            if not present:
                continue
            partner = qubits[0] if qubits[1] == ion else qubits[1]
            partner_trap = state.trap_of(partner)
            if partner_trap == trap_b:
                score_ab += weight
            if partner_trap == trap_a:
                score_ba += weight
    return MoveScores(a_to_b=score_ab, b_to_a=score_ba)


class Harness:
    """A mid-compile snapshot: prefix executed, everything else pending."""

    def __init__(self, rng, machine, num_qubits, num_gates):
        self.circuit = random_circuit(rng, num_qubits, num_gates)
        self.dag = DependencyDAG(self.circuit)
        self.pending = self.dag.topological_order()
        self.index = FutureGateIndex(
            self.dag, self.pending, self.circuit.num_qubits
        )
        chains = greedy_initial_mapping(self.circuit, machine)
        self.state = CompilerState(machine, chains)
        self.executed: set[int] = set()
        self.pos = 0

    def advance(self, count: int) -> None:
        """Mark the next ``count`` pending gates executed (placement is
        left untouched — scoring only reads the current mapping)."""
        count = min(count, len(self.pending) - self.pos)
        for _ in range(count):
            node = self.pending[self.pos]
            self.executed.add(node)
            self.index.mark_executed(
                node, self.dag.gate(node).is_two_qubit
            )
            self.pos += 1

    def stream(self, start: int, exclude: int | None = None):
        return [
            (self.dag.gate(node), self.dag.layer_of(node))
            for node in self.pending[start:]
            if node != exclude
        ]

    def rank_at(self, start: int) -> int:
        return sum(
            1
            for node in self.pending[:start]
            if self.dag.gate(node).is_two_qubit
        )

    def view(self, start: int, exclude: int | None = None):
        return self.index.view(start, self.rank_at(start), exclude)


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("metric", ["layers", "gates"])
def test_indexed_move_scores_bit_identical(machine_name, metric):
    rng = random.Random(zlib.crc32(f"scores/{machine_name}/{metric}".encode()))
    machine = MACHINES[machine_name]()
    for proximity in PROXIMITIES:
        for decay in (1.0, 0.75):
            policy = FutureOpsPolicy(
                proximity=proximity,
                proximity_metric=metric,
                score_decay=decay,
            )
            harness = Harness(
                rng, machine, rng.randint(6, machine.load_capacity), 45
            )
            while harness.pos < len(harness.pending) - 1:
                start = harness.pos
                active = harness.pending[start]
                active_layer = harness.dag.layer_of(active)
                ions = sorted(
                    {
                        q
                        for node in harness.pending[start:]
                        for q in harness.dag.gate(node).qubits
                    }
                )
                pairs = [
                    (a, b)
                    for a in ions
                    for b in ions
                    if a < b and not harness.state.co_located(a, b)
                ]
                for ion_a, ion_b in rng.sample(pairs, min(4, len(pairs))):
                    expected = reference_move_scores(
                        policy,
                        ion_a,
                        ion_b,
                        harness.state,
                        harness.stream(start),
                        active_layer,
                    )
                    via_iterable = policy.move_scores(
                        ion_a,
                        ion_b,
                        harness.state,
                        iter(harness.stream(start)),
                        active_layer,
                    )
                    via_index = policy.move_scores(
                        ion_a,
                        ion_b,
                        harness.state,
                        harness.view(start),
                        active_layer,
                    )
                    assert via_iterable == expected
                    assert via_index == expected, (
                        machine_name,
                        metric,
                        proximity,
                        decay,
                        (ion_a, ion_b),
                    )
                harness.advance(rng.randint(1, 6))


def reference_eviction_counts(
    state, eligible, source_trap, destination_trap, stream, window
):
    """Frozen copy of the stream-scan eviction counting."""
    from repro.compiler.state import CompilationError

    dest_count = {ion: 0 for ion in eligible}
    source_count = {ion: 0 for ion in eligible}
    seen = 0
    for gate, _layer in stream:
        if not gate.is_two_qubit:
            continue
        seen += 1
        if seen > window:
            break
        q0, q1 = gate.qubits
        for ion, partner in ((q0, q1), (q1, q0)):
            if ion not in dest_count:
                continue
            try:
                partner_trap = state.trap_of(partner)
            except CompilationError:
                continue
            if partner_trap == destination_trap:
                dest_count[ion] += 1
            elif partner_trap == source_trap:
                source_count[ion] += 1
    return dest_count, source_count


def reference_max_score(state, source, destination, pinned, stream, window):
    eligible = [i for i in state.chains[source] if i not in pinned]
    dest_count, source_count = reference_eviction_counts(
        state, eligible, source, destination, stream, window
    )
    best_ion = eligible[0]
    best_score = float("-inf")
    for ion in eligible:
        dest = dest_count[ion]
        src = source_count[ion]
        if dest == src:
            score = TIE_WEIGHT_DEST * dest - TIE_WEIGHT_SOURCE * src
        else:
            score = DEFAULT_WEIGHT_DEST * dest - DEFAULT_WEIGHT_SOURCE * src
        if score > best_score:
            best_score = score
            best_ion = ion
    return best_ion, best_score


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
def test_indexed_eviction_pick_bit_identical(machine_name):
    rng = random.Random(zlib.crc32(f"evict/{machine_name}".encode()))
    machine = MACHINES[machine_name]()
    for trial in range(3):
        harness = Harness(
            rng, machine, rng.randint(6, machine.load_capacity), 40
        )
        while harness.pos < len(harness.pending) - 1:
            start = harness.pos
            occupied = [
                t
                for t in range(machine.num_traps)
                if harness.state.chains[t]
            ]
            for window in (1, 5, 64):
                source = rng.choice(occupied)
                destination = rng.choice(
                    [t for t in range(machine.num_traps) if t != source]
                )
                chain = harness.state.chains[source]
                pinned = frozenset(
                    rng.sample(chain, min(len(chain) - 1, 1))
                )
                expected = reference_max_score(
                    harness.state,
                    source,
                    destination,
                    pinned,
                    harness.stream(start),
                    window,
                )
                via_iterable = max_score_with_value(
                    harness.state,
                    source,
                    destination,
                    pinned,
                    harness.stream(start),
                    window,
                )
                via_index = max_score_with_value(
                    harness.state,
                    source,
                    destination,
                    pinned,
                    harness.view(start),
                    window,
                )
                assert via_iterable == expected
                assert via_index == expected, (machine_name, trial, window)
            harness.advance(rng.randint(2, 7))


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("metric", ["layers", "gates"])
def test_indexed_reorder_candidates_bit_identical(machine_name, metric):
    rng = random.Random(zlib.crc32(f"reorder/{machine_name}/{metric}".encode()))
    machine = MACHINES[machine_name]()
    for proximity in PROXIMITIES:
        policy = FutureOpsPolicy(proximity=proximity, proximity_metric=metric)
        harness = Harness(
            rng, machine, rng.randint(6, machine.load_capacity), 40
        )
        checked = 0
        while harness.pos < len(harness.pending) - 1:
            active_pos = harness.pos

            def decide(gate, upcoming, layer):
                return policy.favoured(gate, harness.state, upcoming, layer)

            for old_destination in range(machine.num_traps):
                naive = find_reorder_candidate(
                    harness.pending,
                    active_pos,
                    harness.executed,
                    harness.dag,
                    harness.state,
                    decide,
                    old_destination,
                )
                indexed = find_reorder_candidate(
                    harness.pending,
                    active_pos,
                    harness.executed,
                    harness.dag,
                    harness.state,
                    decide,
                    old_destination,
                    future=harness.index,
                )
                assert naive == indexed, (
                    machine_name,
                    metric,
                    proximity,
                    old_destination,
                    active_pos,
                )
                checked += 1
            harness.advance(rng.randint(1, 5))
        assert checked > 0


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize(
    "policy_name", ["excess-capacity", "future-ops"]
)
def test_full_compilation_bit_identical(machine_name, policy_name):
    """End-to-end: the indexed compiler's every output equals the
    reference tail-scanning compiler's, over both proximity metrics,
    all cutoffs, re-ordering, cheap eviction and chain-order modes."""
    rng = random.Random(zlib.crc32(f"full/{machine_name}/{policy_name}".encode()))
    machine = MACHINES[machine_name]()
    variants = []
    if policy_name == "excess-capacity":
        variants.append(CompilerConfig.baseline())
        variants.append(
            CompilerConfig.baseline().variant(
                reorder=True, rebalance="nearest", ion_selection="max-score"
            )
        )
    else:
        for metric in ("layers", "gates"):
            for proximity in PROXIMITIES:
                variants.append(
                    CompilerConfig.optimized().variant(
                        proximity=proximity, proximity_metric=metric
                    )
                )
        variants.append(CompilerConfig.optimized().variant(cheap_evict=True))
        variants.append(
            CompilerConfig.optimized().variant(track_chain_order=True)
        )
        variants.append(CompilerConfig.optimized().variant(score_decay=0.8))
    for config in variants:
        num_qubits = rng.randint(6, machine.load_capacity)
        circuit = random_circuit(rng, num_qubits, rng.randint(25, 60))
        chains = greedy_initial_mapping(circuit, machine)
        indexed = QCCDCompiler(machine, config).compile(
            circuit, initial_chains=chains
        )
        reference = QCCDCompiler(
            machine, config, use_future_index=False
        ).compile(circuit, initial_chains=chains)
        assert list(indexed.schedule) == list(reference.schedule), config
        assert indexed.gate_order == reference.gate_order
        assert indexed.num_reorders == reference.num_reorders
        assert indexed.num_rebalances == reference.num_rebalances
        assert indexed.final_chains == reference.final_chains


class TestScoringMemo:
    """The shared per-(gate, mapping-epoch) memo: one scoring pass per
    decision, where the pre-index compiler paid two (``favoured`` in
    the main loop plus ``decide``, and a third on the cheap-eviction
    margin check)."""

    def _compile(self, config):
        rng = random.Random(zlib.crc32(b"memo"))
        machine = linear_machine(4, capacity=4, comm_capacity=1)
        circuit = random_circuit(rng, machine.load_capacity - 2, 60)
        compiler = QCCDCompiler(machine, config)
        compiler.compile(circuit)
        return compiler._last_future_index

    def test_one_scoring_pass_per_decision(self):
        index = self._compile(
            CompilerConfig.optimized().variant(
                reorder=False, cheap_evict=False
            )
        )
        assert index.num_decision_points > 0
        assert index.num_score_passes == index.num_decision_points

    def test_margin_check_rides_the_same_memo(self):
        # cheap_evict adds a _score_margin call per full-destination
        # event; an eviction in between legitimately re-scores (the
        # mapping changed), so the bound is two passes per decision.
        index = self._compile(
            CompilerConfig.optimized().variant(
                reorder=False, cheap_evict=True
            )
        )
        assert index.num_decision_points > 0
        assert (
            index.num_score_passes <= 2 * index.num_decision_points
        )

    def test_baseline_policy_never_scores(self):
        index = self._compile(CompilerConfig.baseline())
        assert index.num_decision_points > 0
        assert index.num_score_passes == 0


class TestIndexInvariants:
    def test_rejects_non_monotone_pending(self):
        circuit = Circuit(3).add("ms", 0, 1).add("ms", 0, 2)
        dag = DependencyDAG(circuit)
        with pytest.raises(ValueError, match="layer-monotone"):
            FutureGateIndex(dag, [1, 0], circuit.num_qubits)

    def test_view_iteration_matches_stream(self):
        rng = random.Random(zlib.crc32(b"view-iter"))
        machine = ring_machine(5, capacity=4, comm_capacity=1)
        harness = Harness(rng, machine, 8, 30)
        harness.advance(5)
        exclude = harness.pending[harness.pos + 2]
        view = harness.view(harness.pos, exclude=exclude)
        assert [
            (gate, layer) for gate, layer in view
        ] == harness.stream(harness.pos, exclude=exclude)
