"""Simulator tests: validation, heating model, timing, fidelity."""

import math

import pytest

from repro.arch import linear_topology, uniform_machine
from repro.circuits.gate import Gate
from repro.sim import (
    GateOp,
    MachineParams,
    MergeOp,
    MoveOp,
    NoiseParams,
    Schedule,
    SimulationError,
    Simulator,
    SplitOp,
    TimingParams,
)


def machine(traps=3, capacity=4, comm=1):
    return uniform_machine(linear_topology(traps), capacity, comm)


def quiet_params(**noise_overrides) -> MachineParams:
    """Noise params with recooling off and simple constants for math."""
    defaults = dict(
        heating_rate=0.0,
        gate_infidelity_scale=0.0,
        move_heating=1.0,
        split_heating=0.0,
        merge_heating=0.0,
        background_heating_rate=0.0,
        one_qubit_infidelity=0.0,
        recool_enabled=False,
    )
    defaults.update(noise_overrides)
    return MachineParams(TimingParams(), NoiseParams(**defaults))


def shuttle_ops(ion, src, dst, path=None):
    """A complete split/move/merge op chain along a path."""
    ops = [SplitOp(ion=ion, trap=src)]
    hops = path or [src, dst]
    for a, b in zip(hops, hops[1:]):
        ops.append(MoveOp(ion=ion, src=a, dst=b))
    ops.append(MergeOp(ion=ion, trap=hops[-1]))
    return ops


class TestValidation:
    def run(self, ops, chains, m=None):
        return Simulator(m or machine(), quiet_params()).run(
            Schedule(ops), chains
        )

    def test_gate_requires_co_location(self):
        ops = [GateOp(gate=Gate("ms", (0, 1)), trap=0)]
        with pytest.raises(SimulationError):
            self.run(ops, {0: [0], 1: [1]})

    def test_gate_in_wrong_trap(self):
        ops = [GateOp(gate=Gate("ms", (0, 1)), trap=1)]
        with pytest.raises(SimulationError):
            self.run(ops, {0: [0, 1]})

    def test_split_of_absent_ion(self):
        with pytest.raises(SimulationError):
            self.run([SplitOp(ion=5, trap=0)], {0: [0]})

    def test_double_split(self):
        ops = [SplitOp(ion=0, trap=0), SplitOp(ion=0, trap=0)]
        with pytest.raises(SimulationError):
            self.run(ops, {0: [0, 1]})

    def test_move_without_split(self):
        with pytest.raises(SimulationError):
            self.run([MoveOp(ion=0, src=0, dst=1)], {0: [0]})

    def test_move_from_wrong_trap(self):
        ops = [SplitOp(ion=0, trap=0), MoveOp(ion=0, src=1, dst=2)]
        with pytest.raises(SimulationError):
            self.run(ops, {0: [0]})

    def test_move_over_missing_edge(self):
        ops = [SplitOp(ion=0, trap=0), MoveOp(ion=0, src=0, dst=2)]
        with pytest.raises(SimulationError):
            self.run(ops, {0: [0]})

    def test_move_into_full_trap(self):
        ops = [SplitOp(ion=0, trap=0), MoveOp(ion=0, src=0, dst=1)]
        chains = {0: [0], 1: [1, 2, 3, 4]}  # capacity 4: full
        with pytest.raises(SimulationError):
            self.run(ops, chains)

    def test_merge_without_move_to_trap(self):
        ops = [SplitOp(ion=0, trap=0), MergeOp(ion=0, trap=1)]
        with pytest.raises(SimulationError):
            self.run(ops, {0: [0]})

    def test_stranded_ion_detected(self):
        ops = [SplitOp(ion=0, trap=0), MoveOp(ion=0, src=0, dst=1)]
        with pytest.raises(SimulationError):
            self.run(ops, {0: [0]})

    def test_initial_chain_overflow(self):
        with pytest.raises(SimulationError):
            self.run([], {0: [0, 1, 2, 3, 4]})

    def test_initial_duplicate_ion(self):
        with pytest.raises(SimulationError):
            self.run([], {0: [0], 1: [0]})

    def test_error_mentions_op_position(self):
        ops = [GateOp(gate=Gate("ms", (0, 1)), trap=0)]
        try:
            self.run(ops, {0: [0], 1: [1]})
        except SimulationError as exc:
            assert "op 0" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected SimulationError")

    def test_valid_shuttle_executes(self):
        report = self.run(shuttle_ops(0, 0, 1), {0: [0], 1: [1]})
        assert report.num_shuttles == 1
        assert report.num_splits == 1
        assert report.num_merges == 1


class TestHeatingModel:
    def test_merge_deposits_transit_energy(self):
        params = quiet_params(move_heating=2.0, merge_heating=3.0)
        ops = shuttle_ops(0, 0, 2, path=[0, 1, 2]) + [
            GateOp(gate=Gate("ms", (0, 5)), trap=2)
        ]
        sim = Simulator(machine(), params)
        report = sim.run(Schedule(ops), {0: [0], 2: [5]})
        # 2 hops x 2.0 + merge 3.0 = 7.0 quanta on the destination chain.
        assert report.mean_gate_nbar == pytest.approx(7.0)

    def test_split_heats_source_chain(self):
        params = quiet_params(split_heating=1.5, move_heating=0.0)
        ops = shuttle_ops(0, 0, 1) + [
            GateOp(gate=Gate("ms", (1, 2)), trap=0)
        ]
        report = Simulator(machine(), params).run(
            Schedule(ops), {0: [0, 1, 2]}
        )
        assert report.mean_gate_nbar == pytest.approx(1.5)

    def test_carried_fraction(self):
        params = quiet_params(
            move_heating=2.0, carried_energy_fraction=0.5, merge_heating=0.0
        )
        ops = shuttle_ops(0, 0, 1) + [GateOp(gate=Gate("ms", (0, 5)), trap=1)]
        report = Simulator(machine(), params).run(
            Schedule(ops), {0: [0], 1: [5]}
        )
        assert report.mean_gate_nbar == pytest.approx(1.0)

    def test_background_heating_during_gates(self):
        params = quiet_params(
            move_heating=0.0, background_heating_rate=1000.0
        )
        tau = params.timing.gate2q_time
        ops = [
            GateOp(gate=Gate("ms", (0, 1)), trap=0),
            GateOp(gate=Gate("ms", (0, 1)), trap=0),
        ]
        report = Simulator(machine(), params).run(Schedule(ops), {0: [0, 1]})
        # Second gate sees the heat of the first: 1000 * tau.
        assert report.max_nbar == pytest.approx(2 * 1000.0 * tau)
        assert report.gate_fidelities[0] == 1.0

    def test_recooling_caps_nbar(self):
        hot = quiet_params(
            move_heating=0.0,
            background_heating_rate=1000.0,
            recool_enabled=True,
            recool_decay=0.5,
            recool_floor=0.0,
        )
        ops = [GateOp(gate=Gate("ms", (0, 1)), trap=0) for _ in range(50)]
        report = Simulator(machine(), hot).run(Schedule(ops), {0: [0, 1]})
        tau = hot.timing.gate2q_time
        # Geometric series: n̄ converges to heat_per_gate * d/(1-d) pre-gate.
        assert report.mean_gate_nbar < 2 * 1000.0 * tau


class TestFidelityModel:
    def test_formula_matches_paper(self):
        noise = NoiseParams(
            heating_rate=30.0, gate_infidelity_scale=2e-5
        )
        tau = 100e-6
        nbar = 4.0
        chain = 10
        a = 2e-5 * 10 / math.log2(10)
        expected = 1.0 - 30.0 * tau - a * (2 * 4.0 + 1.0)
        assert noise.gate_fidelity(tau, nbar, chain) == pytest.approx(expected)

    def test_fidelity_clamped(self):
        noise = NoiseParams(gate_infidelity_scale=1.0)
        assert noise.gate_fidelity(100e-6, 1e9, 10) == 0.0

    def test_chain_scale_guard_small_chains(self):
        noise = NoiseParams(gate_infidelity_scale=1e-4)
        assert noise.chain_scale(1) == noise.chain_scale(2)
        assert noise.chain_scale(8) > noise.chain_scale(2)

    def test_program_log_fidelity_accumulates(self):
        params = quiet_params(
            move_heating=0.0, one_qubit_infidelity=0.0,
            gate_infidelity_scale=1e-3,
        )
        ops = [GateOp(gate=Gate("ms", (0, 1)), trap=0) for _ in range(3)]
        report = Simulator(machine(), params).run(Schedule(ops), {0: [0, 1]})
        per_gate = params.noise.gate_fidelity(
            params.timing.gate2q_time, 0.0, 2
        )
        assert report.program_log_fidelity == pytest.approx(
            3 * math.log(per_gate)
        )
        assert report.program_fidelity == pytest.approx(per_gate**3)

    def test_one_qubit_gates_use_fixed_infidelity(self):
        params = quiet_params(one_qubit_infidelity=0.01)
        ops = [GateOp(gate=Gate("h", (0,)), trap=0)]
        report = Simulator(machine(), params).run(Schedule(ops), {0: [0]})
        assert report.program_fidelity == pytest.approx(0.99)

    def test_improvement_over(self):
        params = quiet_params(gate_infidelity_scale=1e-3)
        ops = [GateOp(gate=Gate("ms", (0, 1)), trap=0)]
        one = Simulator(machine(), params).run(Schedule(ops), {0: [0, 1]})
        two = Simulator(machine(), params).run(
            Schedule(ops * 2), {0: [0, 1]}
        )
        assert one.improvement_over(two) > 1.0
        assert two.improvement_over(one) < 1.0

    def test_log10(self):
        params = quiet_params(gate_infidelity_scale=1e-3)
        ops = [GateOp(gate=Gate("ms", (0, 1)), trap=0)]
        report = Simulator(machine(), params).run(Schedule(ops), {0: [0, 1]})
        assert report.log10_fidelity == pytest.approx(
            report.program_log_fidelity / math.log(10)
        )


class TestTiming:
    def test_serial_within_trap(self):
        params = quiet_params()
        tau = params.timing.gate2q_time
        ops = [GateOp(gate=Gate("ms", (0, 1)), trap=0)] * 3
        report = Simulator(machine(), params).run(Schedule(ops), {0: [0, 1]})
        assert report.duration == pytest.approx(3 * tau)

    def test_parallel_across_traps(self):
        params = quiet_params()
        tau = params.timing.gate2q_time
        ops = [
            GateOp(gate=Gate("ms", (0, 1)), trap=0),
            GateOp(gate=Gate("ms", (2, 3)), trap=1),
        ]
        report = Simulator(machine(), params).run(
            Schedule(ops), {0: [0, 1], 1: [2, 3]}
        )
        assert report.duration == pytest.approx(tau)

    def test_shuttle_time_accounted(self):
        params = quiet_params()
        t = params.timing
        report = Simulator(machine(), params).run(
            Schedule(shuttle_ops(0, 0, 1)), {0: [0]}
        )
        assert report.duration == pytest.approx(
            t.split_time + t.move_time + t.merge_time
        )

    def test_move_synchronizes_endpoint_traps(self):
        params = quiet_params()
        t = params.timing
        ops = [GateOp(gate=Gate("ms", (1, 2)), trap=1)] + shuttle_ops(0, 0, 1)
        report = Simulator(machine(), params).run(
            Schedule(ops), {0: [0], 1: [1, 2]}
        )
        # The move cannot start before trap 1 finishes its gate.
        expected = max(t.split_time, t.gate2q_time) + t.move_time + t.merge_time
        assert report.duration == pytest.approx(expected)

    def test_gate_time_lookup(self):
        timing = TimingParams()
        assert timing.gate_time(1) == timing.gate1q_time
        assert timing.gate_time(2) == timing.gate2q_time


class TestParamHelpers:
    def test_with_noise_override(self):
        params = MachineParams().with_noise(move_heating=9.0)
        assert params.noise.move_heating == 9.0
        assert params.timing == MachineParams().timing

    def test_with_timing_override(self):
        params = MachineParams().with_timing(move_time=1e-3)
        assert params.timing.move_time == 1e-3
