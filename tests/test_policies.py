"""Shuttle-direction policy tests, including the paper's worked examples."""

import pytest

from repro.arch import linear_topology, uniform_machine
from repro.circuits.gate import Gate
from repro.compiler.policies import (
    ExcessCapacityPolicy,
    FutureOpsPolicy,
    ShuttleDecision,
    excess_capacity_decision,
    make_policy,
)
from repro.compiler.state import CompilerState


def two_trap_state(chains, capacity=4, comm=1):
    machine = uniform_machine(linear_topology(2), capacity, comm)
    return CompilerState(machine, chains)


def fig4_state():
    """Fig. 4's setup: capacity 4, T0 = [0, 1], T1 = [2, 3, 4]."""
    return two_trap_state({0: [0, 1], 1: [2, 3, 4]})


def fig4_program():
    """Gates A-D of Fig. 4."""
    return [
        Gate("ms", (1, 2)),  # A
        Gate("ms", (2, 3)),  # B
        Gate("ms", (1, 2)),  # C
        Gate("ms", (2, 4)),  # D
    ]


class TestExcessCapacityPolicy:
    """Listing 1 semantics, verified against the Fig. 4 walk-through."""

    def test_fig4_gate_a_moves_ion2_to_t0(self):
        state = fig4_state()
        # EC(T0)=2 > EC(T1)=1 -> the T1 ion moves into T0.
        decision = excess_capacity_decision(1, 2, state)
        assert decision == ShuttleDecision(ion=2, src=1, dst=0)

    def test_moves_into_roomier_trap(self):
        state = two_trap_state({0: [0], 1: [1, 2, 3]})
        # EC(T0)=3 > EC(T1)=1: second ion comes to T0.
        assert excess_capacity_decision(0, 1, state).ion == 1
        # Mirrored: EC(T0) < EC(T1) moves the first ion to T1.
        state2 = two_trap_state({0: [0, 1, 2], 1: [3]})
        assert excess_capacity_decision(0, 3, state2) == ShuttleDecision(
            ion=0, src=0, dst=1
        )

    def test_tie_moves_first_ion(self):
        state = two_trap_state({0: [0, 1], 1: [2, 3]})
        decision = excess_capacity_decision(0, 2, state)
        assert decision == ShuttleDecision(ion=0, src=0, dst=1)

    def test_fig4_full_sequence_ping_pongs(self):
        """Replaying Fig. 4: the EC policy shuttles on every gate."""
        state = fig4_state()
        policy = ExcessCapacityPolicy()
        shuttles = 0
        for gate in fig4_program():
            a, b = gate.qubits
            if state.trap_of(a) == state.trap_of(b):
                continue
            decision = policy.decide(gate, state, [])
            state.detach_ion(decision.ion)
            state.attach_ion(decision.ion, decision.dst)
            shuttles += 1
        assert shuttles == 4  # the paper's count for the baseline

    def test_policy_object_matches_function(self):
        state = fig4_state()
        gate = Gate("ms", (1, 2))
        assert ExcessCapacityPolicy().decide(
            gate, state, []
        ) == excess_capacity_decision(1, 2, state)


class TestFutureOpsScores:
    """Table I of the paper: move-score computation for Fig. 4 gate A."""

    def test_table1_scores(self):
        state = fig4_state()
        policy = FutureOpsPolicy(proximity=6, proximity_metric="gates")
        upcoming = fig4_program()[1:]  # gates B, C, D
        scores = policy.move_scores(1, 2, state, upcoming)
        assert scores.a_to_b == 3  # ionA(A->B): C counts 1, B and D count 2
        assert scores.b_to_a == 1  # ionB(B->A): C counts 1

    def test_fig4_optimized_needs_one_shuttle(self):
        """Future-ops moves ion 1 once; gates B-D then run in T1."""
        state = fig4_state()
        policy = FutureOpsPolicy(
            proximity=6, proximity_metric="gates", capacity_guard=0
        )
        program = fig4_program()
        shuttles = 0
        for position, gate in enumerate(program):
            a, b = gate.qubits
            if state.trap_of(a) == state.trap_of(b):
                continue
            decision = policy.decide(gate, state, program[position + 1 :])
            state.detach_ion(decision.ion)
            state.attach_ion(decision.ion, decision.dst)
            shuttles += 1
        assert shuttles == 1  # the paper's count for this work

    def test_symmetric_pair_counts_both_directions(self):
        state = fig4_state()
        policy = FutureOpsPolicy(proximity=None)
        # A repeat of the same gate counts +1 on both scores.
        scores = policy.move_scores(1, 2, state, [Gate("ms", (1, 2))])
        assert scores.a_to_b == 1
        assert scores.b_to_a == 1


class TestProximityCutoff:
    def make_wide_state(self):
        machine = uniform_machine(linear_topology(2), 8, 1)
        return CompilerState(machine, {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]})

    def test_gate_metric_cutoff(self):
        """Fig. 5: a gap longer than the proximity excludes later gates."""
        state = self.make_wide_state()
        policy = FutureOpsPolicy(proximity=2, proximity_metric="gates")
        filler = [Gate("ms", (2, 3))] * 3  # gap of 3 > 2
        upcoming = filler + [Gate("ms", (0, 4))]
        scores = policy.move_scores(0, 4, state, upcoming)
        assert scores.a_to_b == 0
        assert scores.b_to_a == 0

    def test_gate_metric_within_window(self):
        state = self.make_wide_state()
        policy = FutureOpsPolicy(proximity=3, proximity_metric="gates")
        filler = [Gate("ms", (2, 3))] * 3  # gap of exactly 3 <= 3
        upcoming = filler + [Gate("ms", (0, 5))]
        scores = policy.move_scores(0, 4, state, upcoming)
        assert scores.a_to_b == 1  # partner 5 lives in trap B

    def test_layer_metric_cutoff(self):
        state = self.make_wide_state()
        policy = FutureOpsPolicy(proximity=2, proximity_metric="layers")
        # Relevant gate 5 layers after the active gate: excluded.
        upcoming = [(Gate("ms", (0, 5)), 5)]
        scores = policy.move_scores(0, 4, state, upcoming, active_layer=0)
        assert scores.a_to_b == 0

    def test_layer_metric_chained_window(self):
        state = self.make_wide_state()
        policy = FutureOpsPolicy(proximity=2, proximity_metric="layers")
        # Each relevant gate within 2 layers of the previous one: the
        # window slides along and all three count.
        upcoming = [
            (Gate("ms", (0, 5)), 2),
            (Gate("ms", (0, 6)), 4),
            (Gate("ms", (0, 7)), 6),
        ]
        scores = policy.move_scores(0, 4, state, upcoming, active_layer=0)
        assert scores.a_to_b == 3

    def test_unbounded_proximity(self):
        state = self.make_wide_state()
        policy = FutureOpsPolicy(proximity=None)
        filler = [Gate("ms", (2, 3))] * 50
        upcoming = filler + [Gate("ms", (0, 5))]
        scores = policy.move_scores(0, 4, state, upcoming)
        assert scores.a_to_b == 1

    def test_proximity_zero_still_sees_adjacent(self):
        state = self.make_wide_state()
        policy = FutureOpsPolicy(proximity=0, proximity_metric="gates")
        upcoming = [Gate("ms", (0, 5)), Gate("ms", (2, 3)), Gate("ms", (0, 6))]
        scores = policy.move_scores(0, 4, state, upcoming)
        assert scores.a_to_b == 1  # second relevant gate behind a gap


class TestDecideAndGuard:
    def test_higher_score_wins(self):
        state = fig4_state()
        policy = FutureOpsPolicy(
            proximity=6, proximity_metric="gates", capacity_guard=0
        )
        decision = policy.decide(
            Gate("ms", (1, 2)), state, fig4_program()[1:]
        )
        assert decision == ShuttleDecision(ion=1, src=0, dst=1)

    def test_tie_falls_back_to_excess_capacity(self):
        state = fig4_state()
        policy = FutureOpsPolicy(proximity=6)
        decision = policy.decide(Gate("ms", (1, 2)), state, [])
        assert decision == excess_capacity_decision(1, 2, state)

    def test_tie_first_ion_option(self):
        state = fig4_state()
        policy = FutureOpsPolicy(proximity=6, tie_break="first-ion")
        decision = policy.decide(Gate("ms", (1, 2)), state, [])
        assert decision.ion == 1

    def test_capacity_guard_vetoes_tight_destination(self):
        # T1 has EC=1; with guard=1 the winning direction flips.
        state = fig4_state()
        policy = FutureOpsPolicy(
            proximity=6, proximity_metric="gates", capacity_guard=1
        )
        decision = policy.decide(
            Gate("ms", (1, 2)), state, fig4_program()[1:]
        )
        assert decision == ShuttleDecision(ion=2, src=1, dst=0)

    def test_score_decay_weights_near_future(self):
        state = fig4_state()
        policy = FutureOpsPolicy(
            proximity=None, score_decay=0.5, proximity_metric="layers"
        )
        upcoming = [(Gate("ms", (1, 3)), 1), (Gate("ms", (1, 3)), 4)]
        scores = policy.move_scores(1, 2, state, upcoming, active_layer=0)
        assert scores.a_to_b == pytest.approx(0.5 + 0.5**4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FutureOpsPolicy(proximity=-1)
        with pytest.raises(ValueError):
            FutureOpsPolicy(tie_break="nope")
        with pytest.raises(ValueError):
            FutureOpsPolicy(proximity_metric="nope")
        with pytest.raises(ValueError):
            FutureOpsPolicy(capacity_guard=-1)
        with pytest.raises(ValueError):
            FutureOpsPolicy(score_decay=0.0)

    def test_make_policy(self):
        assert isinstance(
            make_policy("excess-capacity", None, "excess-capacity"),
            ExcessCapacityPolicy,
        )
        policy = make_policy("future-ops", 6, "first-ion", "gates", 2, 0.9)
        assert isinstance(policy, FutureOpsPolicy)
        assert policy.proximity == 6
        assert policy.capacity_guard == 2
        with pytest.raises(ValueError):
            make_policy("nope", None, "first-ion")
