"""Schedule container tests."""

from repro.circuits.gate import Gate
from repro.sim.ops import GateOp, MergeOp, MoveOp, ShuttleReason, SplitOp
from repro.sim.schedule import Schedule


def mixed_schedule() -> Schedule:
    schedule = Schedule()
    schedule.append(GateOp(gate=Gate("ms", (0, 1)), trap=0))
    schedule.append(SplitOp(ion=2, trap=1))
    schedule.append(MoveOp(ion=2, src=1, dst=0))
    schedule.append(
        MoveOp(ion=2, src=0, dst=1, reason=ShuttleReason.REBALANCE)
    )
    schedule.append(MergeOp(ion=2, trap=1))
    schedule.append(GateOp(gate=Gate("h", (0,)), trap=0))
    return schedule


class TestCounts:
    def test_len_and_iter(self):
        schedule = mixed_schedule()
        assert len(schedule) == 6
        assert len(list(schedule)) == 6
        assert schedule[0].kind == "gate"

    def test_num_shuttles_counts_moves(self):
        assert mixed_schedule().num_shuttles == 2

    def test_gate_counts(self):
        schedule = mixed_schedule()
        assert schedule.num_gates == 2
        assert schedule.num_two_qubit_gates == 1

    def test_split_merge_counts(self):
        schedule = mixed_schedule()
        assert schedule.num_splits == 1
        assert schedule.num_merges == 1

    def test_shuttles_by_reason(self):
        by_reason = mixed_schedule().shuttles_by_reason()
        assert by_reason[ShuttleReason.GATE] == 1
        assert by_reason[ShuttleReason.REBALANCE] == 1

    def test_shuttle_to_gate_ratio(self):
        assert mixed_schedule().shuttle_to_gate_ratio == 2.0
        assert Schedule().shuttle_to_gate_ratio == 0.0

    def test_count_kinds(self):
        kinds = mixed_schedule().count_kinds()
        assert kinds == {"gate": 2, "split": 1, "move": 2, "merge": 1}

    def test_gate_ops(self):
        gate_ops = mixed_schedule().gate_ops()
        assert len(gate_ops) == 2
        assert all(isinstance(op, GateOp) for op in gate_ops)

    def test_extend(self):
        schedule = Schedule()
        schedule.extend(mixed_schedule().ops)
        assert len(schedule) == 6

    def test_repr(self):
        text = repr(mixed_schedule())
        assert "shuttles=2" in text


class TestHashing:
    def test_hash_consistent_with_eq(self):
        # Regression: __eq__ without __hash__ silently made schedules
        # unhashable; the content hash must match content equality.
        a, b = mixed_schedule(), mixed_schedule()
        assert a == b and a is not b
        assert hash(a) == hash(b)

    def test_schedules_work_as_dict_keys(self):
        memo = {mixed_schedule(): "cached"}
        assert memo[mixed_schedule()] == "cached"
        assert Schedule() not in memo
        assert len({mixed_schedule(), mixed_schedule(), Schedule()}) == 2

    def test_hash_differs_for_different_content(self):
        other = Schedule(mixed_schedule().ops[:-1])
        assert hash(other) != hash(mixed_schedule())

    def test_hash_is_cached(self):
        schedule = mixed_schedule()
        assert schedule._hash is None
        first = hash(schedule)
        assert schedule._hash == first
        assert hash(schedule) == first

    def test_mutation_invalidates_cached_hash(self):
        # Regression: the cached hash must not survive a mutation — a
        # schedule appended to after hashing has to re-hash to its new
        # content, matching __eq__ against a fresh equal schedule.
        schedule = mixed_schedule()
        stale = hash(schedule)
        schedule.append(GateOp(gate=Gate("h", (1,)), trap=0))
        assert hash(schedule) != stale
        assert hash(schedule) == hash(Schedule(schedule.ops))
        extended = mixed_schedule()
        stale = hash(extended)
        extended.extend([GateOp(gate=Gate("h", (1,)), trap=0)])
        assert hash(extended) != stale
        assert hash(extended) == hash(schedule)


class TestSpliced:
    def test_spliced_ops_and_counts(self):
        schedule = mixed_schedule()
        _ = schedule.num_shuttles  # force the kind tally into existence
        replacement = [SplitOp(ion=3, trap=0), MergeOp(ion=3, trap=0)]
        out = schedule.spliced(2, 4, replacement)
        expected = Schedule(
            list(schedule.ops[:2]) + replacement + list(schedule.ops[4:])
        )
        assert out == expected
        # Derived counts match a from-scratch tally.
        assert out.count_kinds() == expected.count_kinds()
        assert out.num_shuttles == 0
        assert out.num_splits == 2
        assert hash(out) == hash(expected)

    def test_spliced_without_counts_stays_lazy(self):
        schedule = mixed_schedule()
        out = schedule.spliced(0, 1)
        assert out._kind_counts is None
        assert len(out) == 5
        assert out.num_shuttles == 2

    def test_spliced_pure_insertion(self):
        schedule = mixed_schedule()
        _ = schedule.count_kinds()
        extra = [GateOp(gate=Gate("h", (1,)), trap=0)]
        out = schedule.spliced(3, 3, extra)
        assert len(out) == 7
        assert out.num_gates == 3
        assert out.count_kinds() == Schedule(out.ops).count_kinds()
