"""CLI smoke tests (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table2", "table3", "fig8", "ablation", "info"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_compile_arguments(self):
        args = build_parser().parse_args(
            ["compile", "random", "--qubits", "12", "--gates", "30"]
        )
        assert args.benchmark == "random"
        assert args.qubits == 12


class TestExecution:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "L6" in out
        assert "T0 -- T1" in out

    def test_info_other_machines(self, capsys):
        assert main(["info", "--machine", "linear3"]) == 0
        assert main(["info", "--machine", "ring4"]) == 0
        assert main(["info", "--machine", "grid2x3"]) == 0

    def test_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["info", "--machine", "warp9"])

    def test_compile_random_small(self, capsys):
        code = main(
            ["compile", "random", "--qubits", "12", "--gates", "40",
             "--seed", "2", "--trace", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shuttle reduction" in out
        assert "baseline [7]" in out

    def test_compile_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["compile", "frobnicate"])
