"""CLI smoke tests (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("table2", "table3", "fig8", "ablation", "info"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_compile_arguments(self):
        args = build_parser().parse_args(
            ["compile", "random", "--qubits", "12", "--gates", "30"]
        )
        assert args.benchmark == "random"
        assert args.qubits == 12

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "--machines", "l6,ring6", "--jobs", "4", "--dry-run"]
        )
        assert args.command == "sweep"
        assert args.jobs == 4
        assert args.dry_run


class TestExecution:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "L6" in out
        assert "T0 -- T1" in out

    def test_info_other_machines(self, capsys):
        assert main(["info", "--machine", "linear3"]) == 0
        assert main(["info", "--machine", "ring4"]) == 0
        assert main(["info", "--machine", "grid2x3"]) == 0

    def test_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["info", "--machine", "warp9"])

    def test_compile_random_small(self, capsys):
        code = main(
            ["compile", "random", "--qubits", "12", "--gates", "40",
             "--seed", "2", "--trace", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shuttle reduction" in out
        assert "baseline [7]" in out

    def test_compile_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["compile", "frobnicate"])

    def test_info_lists_passes(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "post-compilation passes" in out
        for name in (
            "elide-roundtrips",
            "fuse-merge-split",
            "reroute",
            "tighten-gates",
        ):
            assert name in out


class TestOptimizeCommand:
    def test_optimize_random_small(self, capsys):
        code = main(
            ["optimize", "random:12:40:2", "--machine", "linear3",
             "--diff", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "elide-roundtrips" in out
        assert "raw shuttles" in out and "opt shuttles" in out
        assert "shuttles" in out

    def test_optimize_pass_subset(self, capsys):
        code = main(
            ["optimize", "random:12:40:2", "--machine", "linear3",
             "--passes", "tighten-gates", "--no-guard"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tighten-gates" in out
        assert "elide-roundtrips" not in out

    def test_optimize_unknown_pass(self):
        with pytest.raises(SystemExit):
            main(
                ["optimize", "random:12:40:2", "--passes", "frobnicate"]
            )


class TestSweepCommand:
    def test_dry_run_compiles_nothing(self, capsys):
        code = main(
            ["sweep", "--benchmarks", "random:10:30:1", "--machines",
             "linear3,ring3", "--dry-run"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dry run: nothing compiled" in out
        assert "4 jobs" in out  # 1 circuit x 2 machines x 2 configs
        assert "fingerprint" in out

    def test_sweep_cold_then_warm_cache(self, tmp_path, capsys):
        argv = [
            "sweep", "--benchmarks", "random:10:30:1,random:10:30:2",
            "--machines", "linear3", "--configs", "baseline,optimized",
            "--cache-dir", str(tmp_path / "cache"),
            "--csv", str(tmp_path / "out.csv"),
            "--json", str(tmp_path / "out.json"),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "0% hit rate" in captured.out
        assert (tmp_path / "out.csv").exists()
        assert (tmp_path / "out.json").exists()

        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "100% hit rate" in captured.out
        # Progress diagnostics are logged to stderr; stdout is reports.
        assert "(cached)" in captured.err
        assert "(cached)" not in captured.out

    def test_sweep_no_cache(self, capsys):
        code = main(
            ["sweep", "--benchmarks", "random:10:30:1", "--machines",
             "linear3", "--configs", "baseline", "--no-cache"]
        )
        assert code == 0
        assert "hit rate" not in capsys.readouterr().out

    def test_sweep_unknown_config(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmarks", "random:10:30:1", "--configs",
                  "frobnicate", "--dry-run"])

    def test_sweep_bad_random_spec(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmarks", "random:ten", "--dry-run"])

    def test_sweep_malformed_random_spec_rejected(self):
        # "random10" (missing colon) must error, not silently become
        # the 64-qubit default circuit.
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmarks", "random10", "--dry-run"])

    def test_sweep_with_passes(self, capsys):
        code = main(
            ["sweep", "--benchmarks", "random:10:30:1", "--machines",
             "linear3", "--configs", "optimized", "--no-cache",
             "--passes", "default"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "this-work+passes" in out
        assert "raw" in out and "removed" in out

    def test_sweep_summary_has_cache_and_phase_lines(self, capsys):
        code = main(
            ["sweep", "--benchmarks", "random:10:30:1", "--machines",
             "linear3", "--configs", "baseline", "--no-cache"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache: disabled (--no-cache)" in out
        assert "phases: compile" in out

    def test_sweep_quiet_hides_progress(self, capsys):
        code = main(
            ["--quiet", "sweep", "--benchmarks", "random:10:30:1",
             "--machines", "linear3", "--configs", "baseline",
             "--no-cache"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "[1/1]" not in captured.err
        assert "shuttles" in captured.out  # the report itself survives

    def test_sweep_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        code = main(
            ["sweep", "--benchmarks", "random:10:30:1", "--machines",
             "linear3", "--configs", "baseline", "--no-cache",
             "--metrics-out", str(path)]
        )
        assert code == 0
        document = json.loads(path.read_text())
        assert document["metrics"]["counters"]["compile.circuits"] == 1
        assert document["metrics"]["counters"]["batch.jobs"] == 1
        assert any(
            node["name"] == "compile" for node in document["spans"]
        )
        assert f"wrote {path}" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_text_report(self, capsys):
        code = main(
            ["trace", "random:10:30:1", "--machine", "linear3",
             "--passes", "default"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace: Random-uniform-10q-s1" in out
        assert "span tree (wall time):" in out
        assert "compile" in out
        assert "metrics:" in out
        assert "decision events:" in out

    def test_trace_json(self, capsys):
        import json

        code = main(
            ["trace", "random:10:30:1", "--machine", "linear3", "--json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["metrics"]["counters"]["compile.circuits"] == 1
        assert isinstance(document["events"], list)
        assert document["trace_events"] == len(document["events"])

    def test_trace_jsonl(self, tmp_path, capsys):
        from repro.obs import read_jsonl, validate_stream

        path = tmp_path / "events.jsonl"
        code = main(
            ["trace", "random:10:30:1", "--machine", "linear3",
             "--jsonl", str(path)]
        )
        assert code == 0
        events = read_jsonl(str(path))
        assert validate_stream(events) == len(events)

    def test_trace_leaves_obs_disabled(self):
        from repro import obs

        assert main(
            ["trace", "random:10:30:1", "--machine", "linear3"]
        ) == 0
        assert obs.active() is None

    def test_compile_metrics_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        code = main(
            ["compile", "random", "--qubits", "10", "--gates", "30",
             "--machine", "linear3", "--metrics-out", str(path)]
        )
        assert code == 0
        document = json.loads(path.read_text())
        # `repro compile` compiles both configs under one observation.
        assert document["metrics"]["counters"]["compile.circuits"] == 2

    def test_sweep_unknown_pass(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--benchmarks", "random:10:30:1",
                  "--passes", "frobnicate", "--dry-run"])


class TestLoadCommand:
    def test_load_arguments(self):
        args = build_parser().parse_args(
            ["load", "smoke", "--jobs", "4", "--seed", "9",
             "--count", "6", "--soak", "--report-out", "r.json"]
        )
        assert args.command == "load"
        assert args.scenario == "smoke"
        assert args.jobs == 4
        assert args.seed == 9
        assert args.count == 6
        assert args.soak

    def test_count_and_duration_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["load", "smoke", "--count", "4", "--duration", "2"]
            )

    def test_load_smoke_end_to_end(self, tmp_path, capsys):
        import json

        path = tmp_path / "report.json"
        code = main(
            ["load", "smoke", "--count", "6", "--seed", "3",
             "--report-out", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "load report: smoke" in out
        assert "p50" in out and "soak: " in out
        document = json.loads(path.read_text())
        assert document["counts"]["jobs"] == 6
        assert document["seed"] == 3
        assert {"p50", "p90", "p99"} <= set(document["latency"])
        assert document["throughput"]["windows"]
        assert document["memory"]["samples"]
        assert document["metrics"]["counters"]["load.jobs"] == 6

    def test_load_report_out_creates_parent_dirs(self, tmp_path, capsys):
        import json

        path = tmp_path / "not" / "yet" / "there" / "report.json"
        metrics = tmp_path / "deep" / "er" / "metrics.json"
        code = main(
            ["load", "smoke", "--count", "2", "--seed", "3",
             "--report-out", str(path), "--metrics-out", str(metrics)]
        )
        assert code == 0
        assert json.loads(path.read_text())["counts"]["jobs"] == 2
        assert "metrics" in json.loads(metrics.read_text())

    def test_load_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["load", "no-such-scenario"])

    def test_load_scenario_file(self, tmp_path, capsys):
        import json

        from repro.loadgen import PRESETS

        spec = tmp_path / "mini.json"
        document = PRESETS["smoke"].to_dict()
        document["name"] = "mini"
        document["jobs"] = 4
        spec.write_text(json.dumps(document))
        assert main(["load", str(spec)]) == 0
        assert "load report: mini" in capsys.readouterr().out
