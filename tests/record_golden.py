"""Record the machine-semantics golden fixture.

Runs the paper suite (reduced random ensemble) through compile ->
optimize -> simulate with both compiler configurations and writes the
observable outcomes to ``tests/golden/machine_semantics.json``.  The
golden test (``test_golden_semantics.py``) then pins every refactor of
the op-application machinery to these exact outputs.

Usage::

    PYTHONPATH=src python tests/record_golden.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from golden_util import circuit_case  # noqa: E402

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "golden",
    "machine_semantics.json",
)


def main() -> None:
    from repro.arch.presets import l6_machine
    from repro.bench.suite import paper_suite

    machine = l6_machine()
    cases = []
    for circuit in paper_suite(full=False):
        print(f"recording {circuit.name} ...", flush=True)
        cases.append(circuit_case(circuit, machine))

    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump({"machine": machine.name, "cases": cases}, handle, indent=1)
    print(f"wrote {GOLDEN_PATH} ({len(cases)} cases)")


if __name__ == "__main__":
    main()
