"""The paper's worked examples, end to end.

These tests pin the reproduction to the paper's own numbers:

* Fig. 2 — the sample program's dependency layers (in test_dag.py),
* Fig. 4 / Table I — EC ping-pong (4 shuttles) vs future-ops (1),
* Fig. 6 — gate re-ordering turns 5 shuttles into 2,
* Fig. 7 — re-balancing destination: trap-0-first costs 4 shuttles
  where nearest-first costs 1.
"""

from repro.arch import (
    heterogeneous_machine,
    linear_topology,
    uniform_machine,
)
from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.compiler import CompilerConfig, compile_circuit
from repro.compiler.rebalance import select_destination_trap
from repro.compiler.state import CompilerState
from repro.sim.ops import MoveOp


class TestFig4:
    """Shuttle-direction policies on the Fig. 4 program."""

    machine = uniform_machine(linear_topology(2), 4, 1)
    chains = {0: [0, 1], 1: [2, 3, 4]}

    def program(self) -> Circuit:
        circuit = Circuit(5, name="fig4")
        for a, b in [(1, 2), (2, 3), (1, 2), (2, 4)]:
            circuit.add("ms", a, b)
        return circuit

    def test_baseline_needs_four_shuttles(self):
        result = compile_circuit(
            self.program(),
            self.machine,
            CompilerConfig.baseline(),
            initial_chains=self.chains,
        )
        assert result.num_shuttles == 4

    def test_baseline_ping_pongs_ion_2(self):
        result = compile_circuit(
            self.program(),
            self.machine,
            CompilerConfig.baseline(),
            initial_chains=self.chains,
        )
        movers = [
            op.ion for op in result.schedule if isinstance(op, MoveOp)
        ]
        assert movers == [2, 2, 2, 2]

    def test_future_ops_needs_one_shuttle(self):
        config = CompilerConfig.optimized().variant(
            capacity_guard=0, proximity_metric="gates"
        )
        result = compile_circuit(
            self.program(), self.machine, config, initial_chains=self.chains
        )
        assert result.num_shuttles == 1
        movers = [
            op.ion for op in result.schedule if isinstance(op, MoveOp)
        ]
        assert movers == [1]  # ion 1 moves to T1 once


class TestFig6:
    """Opportunistic gate re-ordering on the Fig. 6 program."""

    machine = heterogeneous_machine(
        linear_topology(2), capacities=[5, 4], comm_capacities=[1, 1]
    )
    chains = {0: [0, 1, 2], 1: [3, 4, 5, 6]}

    def program(self) -> Circuit:
        return Circuit(
            7,
            [
                Gate("ms", (2, 3)),  # gA
                Gate("ms", (4, 0)),  # gB
                Gate("ms", (2, 5)),  # gC
                Gate("ms", (6, 2)),  # gD
                Gate("ms", (1, 4)),  # gE
            ],
            name="fig6",
        )

    def optimized(self, reorder: bool) -> CompilerConfig:
        return CompilerConfig.optimized().variant(
            reorder=reorder, capacity_guard=0, proximity_metric="gates"
        )

    def test_reordering_achieves_two_shuttles(self):
        result = compile_circuit(
            self.program(),
            self.machine,
            self.optimized(reorder=True),
            initial_chains=self.chains,
        )
        assert result.num_shuttles == 2
        assert result.num_reorders == 1
        # gB (index 1) executes before gA (index 0), as in Fig. 6e.
        assert result.gate_order.index(1) < result.gate_order.index(0)

    def test_without_reordering_costs_more(self):
        result = compile_circuit(
            self.program(),
            self.machine,
            self.optimized(reorder=False),
            initial_chains=self.chains,
        )
        assert result.num_shuttles > 2


class TestFig7:
    """Re-balancing destination search on the Fig. 7 trap state."""

    def state(self) -> CompilerState:
        machine = uniform_machine(linear_topology(6), 5, 1)
        chains = {
            0: [0, 1, 2],       # EC 2
            1: [3, 4, 5, 6],    # EC 1
            2: [7],             # EC 4
            3: [8, 9, 10],      # EC 2
            4: [11, 12, 13, 14, 15],  # EC 0 (full, the traffic block)
            5: [],              # EC 5
        }
        return CompilerState(machine, chains)

    def test_previous_logic_sends_to_trap0(self):
        """[7]'s scan from trap 0 picks T0: 4 shuttles away from T4."""
        state = self.state()
        destination = select_destination_trap(state, 4, "lowest-index")
        assert destination == 0
        assert state.machine.topology.distance(4, destination) == 4

    def test_improved_logic_sends_to_nearest_neighbor(self):
        """Algorithm 2 picks T3 or T5: 1 shuttle."""
        state = self.state()
        destination = select_destination_trap(state, 4, "nearest")
        assert destination in (3, 5)
        assert state.machine.topology.distance(4, destination) == 1


class TestPaperHeadlineClaims:
    """Sanity on the abstract's claims, at reduced scale."""

    def test_optimized_never_worse_on_nisq_suite_members(self):
        from repro.bench import qft_circuit, supremacy_circuit
        from repro.arch import l6_machine
        from repro.compiler.mapping import greedy_initial_mapping

        machine = l6_machine()
        for circuit in (
            supremacy_circuit(cycles=6),
            qft_circuit(num_qubits=32),
        ):
            chains = greedy_initial_mapping(circuit, machine)
            base = compile_circuit(
                circuit, machine, CompilerConfig.baseline(),
                initial_chains=chains,
            )
            opt = compile_circuit(
                circuit, machine, CompilerConfig.optimized(),
                initial_chains=chains,
            )
            assert opt.num_shuttles <= base.num_shuttles
