"""Exact shuttle-minimal solver (Section IV-E1's heuristic-vs-exact study)."""

import random

import pytest

from repro.arch import linear_topology, uniform_machine
from repro.circuits.circuit import Circuit
from repro.compiler import CompilerConfig, compile_circuit
from repro.eval.exact import ExactSolverError, optimal_shuttle_count


def machine(traps=3, capacity=4, comm=1):
    return uniform_machine(linear_topology(traps), capacity, comm)


class TestExactSolver:
    def test_local_program_costs_zero(self):
        circuit = Circuit(4).add("ms", 0, 1).add("ms", 2, 3)
        count = optimal_shuttle_count(
            circuit, machine(), {0: [0, 1], 1: [2, 3]}
        )
        assert count == 0

    def test_single_cross_gate_costs_distance(self):
        circuit = Circuit(2).add("ms", 0, 1)
        count = optimal_shuttle_count(
            circuit, machine(traps=3), {0: [0], 2: [1]}
        )
        assert count == 2

    def test_fig4_optimum_is_one(self):
        """The paper's Fig. 4: the optimum equals the future-ops result."""
        circuit = Circuit(5)
        for a, b in [(1, 2), (2, 3), (1, 2), (2, 4)]:
            circuit.add("ms", a, b)
        m = uniform_machine(linear_topology(2), 4, 1)
        count = optimal_shuttle_count(circuit, m, {0: [0, 1], 1: [2, 3, 4]})
        assert count == 1

    def test_empty_circuit(self):
        assert optimal_shuttle_count(Circuit(3), machine(), {0: [0, 1, 2]}) == 0

    def test_capacity_constraints_force_eviction(self):
        # T0 and T1 are full; co-locating ions 0 and 3 requires first
        # evicting one ion from T1 into T2, then moving ion 0 over.
        circuit = Circuit(5).add("ms", 0, 3)
        m = uniform_machine(linear_topology(3), 2, 1)
        chains = {0: [0, 1], 1: [2, 3], 2: [4]}
        count = optimal_shuttle_count(circuit, m, chains)
        assert count == 2  # one eviction + one gate move

    def test_fully_packed_machine_is_infeasible_in_atomic_model(self):
        # Exact moves are atomic (no transient split slot), so a machine
        # with zero spare capacity deadlocks; the solver reports it.
        circuit = Circuit(4).add("ms", 0, 3)
        m = uniform_machine(linear_topology(2), 2, 1)
        with pytest.raises(ExactSolverError):
            optimal_shuttle_count(circuit, m, {0: [0, 1], 1: [2, 3]})

    def test_instance_budget_guard(self):
        with pytest.raises(ExactSolverError):
            optimal_shuttle_count(
                Circuit(30), uniform_machine(linear_topology(4), 10, 1), {}
            )


class TestHeuristicGap:
    """optimal <= optimized <= baseline on random small instances."""

    @pytest.mark.parametrize("seed", range(8))
    def test_sandwich(self, seed):
        rng = random.Random(seed)
        num_ions = 6
        circuit = Circuit(num_ions)
        for _ in range(10):
            a, b = rng.sample(range(num_ions), 2)
            circuit.add("ms", a, b)
        m = machine(traps=3, capacity=4, comm=1)
        chains = {0: [0, 1], 1: [2, 3], 2: [4, 5]}
        optimal = optimal_shuttle_count(circuit, m, chains)
        optimized = compile_circuit(
            circuit, m, CompilerConfig.optimized(), initial_chains=chains
        ).num_shuttles
        baseline = compile_circuit(
            circuit, m, CompilerConfig.baseline(), initial_chains=chains
        ).num_shuttles
        assert optimal <= optimized
        assert optimal <= baseline

    def test_heuristic_usually_near_optimal(self):
        """Aggregate gap study: the optimized heuristic should land
        within 2x of optimal on tiny instances."""
        total_optimal = 0
        total_heuristic = 0
        for seed in range(10):
            rng = random.Random(100 + seed)
            circuit = Circuit(6)
            for _ in range(8):
                a, b = rng.sample(range(6), 2)
                circuit.add("ms", a, b)
            m = machine(traps=3, capacity=4, comm=1)
            chains = {0: [0, 1], 1: [2, 3], 2: [4, 5]}
            total_optimal += optimal_shuttle_count(circuit, m, chains)
            total_heuristic += compile_circuit(
                circuit, m, CompilerConfig.optimized(), initial_chains=chains
            ).num_shuttles
        assert total_heuristic <= 2 * total_optimal
